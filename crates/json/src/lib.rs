//! A small, dependency-free JSON encoder/decoder shared by the lab result
//! store and the serve HTTP API.
//!
//! Grown inside `consensus-lab` for its result store, extracted here once
//! the `consensus-serve` service needed to parse request bodies with the
//! same codec (the lab re-exports this crate as `consensus_lab::json`, so
//! existing paths keep working). The consumers need three properties the
//! offline serde stand-in cannot give: key-order-preserving objects (so
//! repeated sweeps emit *byte-identical* JSONL, which the determinism tests
//! compare directly), exact `u64` round-trips for fingerprints (emitted as
//! hex strings), and a parser to read result files and request bodies back.
//! The subset implemented is exactly what the store emits: objects, arrays,
//! strings, integers, floats, bools, and null — no exponent-notation
//! output, `\uXXXX` escapes on input only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (always emitted with a decimal point).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on encode.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value under `key` as a `usize` — the common shape of the
    /// store/persist/meta parsers.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        usize::try_from(self.get(key)?.as_i64()?).ok()
    }

    /// The numeric payload as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields without `keys`, recursively — used by the determinism
    /// tests to compare records modulo timing fields.
    pub fn without_keys(&self, keys: &[&str]) -> Value {
        match self {
            Value::Obj(fields) => Value::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), v.without_keys(keys)))
                    .collect(),
            ),
            Value::Arr(items) => Value::Arr(items.iter().map(|v| v.without_keys(keys)).collect()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container-nesting depth accepted by [`parse`]. The parser
/// recurses per nesting level, and `consensus-serve` feeds it untrusted
/// request bodies — without a cap, a kilobyte of `[`s would overflow the
/// parsing thread's stack and abort the process. Everything this
/// workspace emits nests single-digit deep.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse one JSON value from `input` (trailing whitespace allowed).
///
/// # Errors
/// Returns [`ParseError`] on malformed input, trailing garbage, or
/// nesting beyond [`MAX_PARSE_DEPTH`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, MAX_PARSE_DEPTH)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError { at, message: message.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[' | b'{') if depth == 0 => Err(err(*pos, "nesting too deep")),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth - 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            let mut seen = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(err(*pos, &format!("duplicate key {key:?}")));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth - 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not produced by our encoder; reject.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "unsupported \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 is passed through. Decode only this one
                // character (length from the lead byte) — validating the
                // whole remaining input per character is quadratic, which
                // untrusted megabyte-scale strings turn into a CPU sink.
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(err(*pos, "invalid UTF-8")),
                };
                let chunk =
                    bytes.get(*pos..*pos + len).ok_or_else(|| err(*pos, "invalid UTF-8"))?;
                let c = std::str::from_utf8(chunk)
                    .map_err(|_| err(*pos, "invalid UTF-8"))?
                    .chars()
                    .next()
                    .expect("nonempty");
                out.push(c);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    if float {
        text.parse::<f64>().map(Value::Float).map_err(|_| err(start, "bad number"))
    } else {
        text.parse::<i64>().map(Value::Int).map_err(|_| err(start, "bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Value)]) -> Value {
        Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn roundtrip_object() {
        let v = obj(&[
            ("name", Value::Str("sw-lossy-link".into())),
            ("depth", Value::Int(4)),
            ("wall_ms", Value::Float(1.5)),
            ("ok", Value::Bool(true)),
            ("chain", Value::Null),
            ("sizes", Value::Arr(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = obj(&[("b", Value::Int(1)), ("a", Value::Int(2))]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}ü".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        // Strings decode one character at a time; re-validating the whole
        // remaining input per character is quadratic, which a single
        // megabyte-scale string in an untrusted 4 MiB HTTP body turns
        // into minutes of CPU. Multi-byte chars keep the same fast path.
        let body = format!("{{\"spec\":\"{}\"}}", "repeat(↔ ".repeat(150_000));
        let start = std::time::Instant::now();
        let v = parse(&body).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "parsing a {} byte string took {:?}",
            body.len(),
            start.elapsed()
        );
        // 11 bytes per repetition: "repeat(" + 3-byte ↔ + space.
        assert_eq!(v.get("spec").unwrap().as_str().unwrap().len(), 11 * 150_000);
    }

    #[test]
    fn u64_fingerprints_survive_as_strings() {
        let fp = u64::MAX;
        let v = obj(&[("fingerprint", Value::Str(format!("{fp:016x}")))]);
        let back = parse(&v.to_string()).unwrap();
        let hex = back.get("fingerprint").unwrap().as_str().unwrap();
        assert_eq!(u64::from_str_radix(hex, 16).unwrap(), fp);
    }

    #[test]
    fn without_keys_strips_recursively() {
        let v = obj(&[
            ("keep", Value::Int(1)),
            ("wall_ms", Value::Int(9)),
            ("inner", obj(&[("wall_ms", Value::Int(3)), ("x", Value::Int(4))])),
        ]);
        let stripped = v.without_keys(&["wall_ms"]);
        assert_eq!(stripped.to_string(), r#"{"keep":1,"inner":{"x":4}}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn rejects_excessive_nesting_instead_of_overflowing() {
        // The serve API parses untrusted bodies with this function; a
        // nesting bomb must be a parse error, not a stack overflow.
        let bomb = "[".repeat(500_000);
        let error = parse(&bomb).unwrap_err();
        assert!(error.message.contains("nesting too deep"), "{error}");
        let object_bomb = "{\"k\":".repeat(MAX_PARSE_DEPTH + 1);
        let error = parse(&object_bomb).unwrap_err();
        assert!(error.message.contains("nesting too deep"), "{error}");
        // Depths at the cap still parse.
        let deep = format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(parse(&deep).is_ok());
    }
}
