//! The persistent on-disk verdict cache.
//!
//! A sweep's expensive artifact is not the prefix space itself — it is the
//! *answer* derived from it. This module journals every deterministic
//! scenario outcome (verdict, detail fields, and a compact space digest)
//! to a cache directory, keyed by
//! `(adversary fingerprint, input domain, depth, analysis)` and salted
//! with a code-version tag, so a second `consensus-lab sweep` in a fresh
//! process answers warm scenarios with **zero** prefix-space expansions.
//!
//! ## Directory layout
//!
//! ```text
//! <cache-dir>/
//!   cache-meta.json     {"salt": "<code-version salt>"}
//!   verdicts.jsonl      one journal entry per cached outcome, append-only
//! ```
//!
//! The journal is append-only and crash-tolerant: a torn final line (the
//! process died mid-append) is skipped on load, never fatal. When the salt
//! in `cache-meta.json` does not match the running binary's
//! [`cache_salt`], the journal is discarded wholesale — any change to the
//! analysis code may change answers, and a stale cache must lose loudly
//! rather than leak old verdicts into new reports.
//!
//! ## What is (and is not) cached
//!
//! Only *budget-independent* outcomes are persisted: verdicts computed to
//! completion. `error`, `budget-exceeded`, budget-starved `undecided`, and
//! `timed_out`-flagged records depend on the budget/limit flags of the run
//! that produced them and are always recomputed. `matches_expected` is
//! likewise *not* persisted — it is re-derived against the current
//! catalog's pinned ground truth at lookup time, so the CI verdict gate
//! can never be masked by a cache written before a ground-truth change.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use consensus_core::config::CacheConfig;
use consensus_core::error::Error;
use consensus_core::space::SpaceStats;
use consensus_obs::metrics::{registry, Counter, Gauge};
use consensus_obs::trace::tracer;
use ptgraph::Value as InputValue;

use crate::json::{self, Value};
use crate::scenario::AnalysisKind;
use crate::store::{Outcome, ScenarioRecord};

/// Process-global registry mirrors of journal effectiveness, fed by
/// every [`DiskCache`] instance (see the equivalent note in
/// [`crate::cache`]).
struct JournalCounters {
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    stores: Arc<Counter>,
    loaded: Arc<Gauge>,
    hit_rate_pct: Arc<Gauge>,
}

fn journal_counters() -> &'static JournalCounters {
    static COUNTERS: OnceLock<JournalCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| JournalCounters {
        lookups: registry().counter("journal.lookups"),
        hits: registry().counter("journal.hits"),
        stores: registry().counter("journal.stores"),
        loaded: registry().gauge("journal.loaded"),
        hit_rate_pct: registry().gauge("journal.hit_rate_pct"),
    })
}

impl JournalCounters {
    fn note_lookup(&self, hit: bool) {
        self.lookups.inc();
        if hit {
            self.hits.inc();
        }
        if let Some(pct) = (self.hits.get() * 100).checked_div(self.lookups.get()) {
            self.hit_rate_pct.set(pct);
        }
    }
}

/// Journal file name inside the cache directory.
pub const JOURNAL_FILE: &str = "verdicts.jsonl";
/// Metadata file name inside the cache directory.
pub const META_FILE: &str = "cache-meta.json";

/// Bump this when an analysis change invalidates previously journaled
/// verdicts without a crate-version bump.
/// `r2`: journal keys gained the analysis-params component (the
/// `Session`-level `AnalysisConfig` can now change solvability verdicts,
/// so differently configured sessions must not share entries).
/// `r3`: entries gained the `certificate` payload (the checkable
/// `consensus-cert/v1` object journaled with definitive solvability
/// verdicts); pre-certificate journals would answer certificate-requesting
/// scenarios with nothing attached, so they are invalidated wholesale.
const SALT_REVISION: &str = "r3";

/// The cache-invalidation salt: crate version × salt revision. Journals
/// written under a different salt are discarded on open.
pub fn cache_salt() -> String {
    format!("{}+{}", env!("CARGO_PKG_VERSION"), SALT_REVISION)
}

/// Cache key: adversary fingerprint × input-domain code × depth ×
/// analysis name × analysis-params code. The step budget is deliberately
/// absent — persisted outcomes are exact, so they hold under any budget.
/// The params code (see [`crate::runner::scenario_params`]) captures the
/// configuration dimensions that *do* change answers (validity flavor,
/// exact-chain search depth), so sessions with different
/// `AnalysisConfig`s can share a cache directory without poisoning each
/// other's verdicts.
type Key = (u64, String, usize, String, String);

fn domain_code(values: &[InputValue]) -> String {
    values.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
}

/// One journaled outcome: everything scenario execution needs to answer
/// without touching a prefix space.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskEntry {
    /// Verdict and detail fields.
    pub outcome: Outcome,
    /// Compact digest of the space the analysis ran on (absent for
    /// solvability records, which never expose one).
    pub space: Option<SpaceStats>,
    /// The checkable certificate extracted with a definitive solvability
    /// verdict (the `consensus-cert/v1` JSON object), journaled so a warm
    /// process can hand it out with **zero** re-expansions.
    pub certificate: Option<Value>,
}

impl DiskEntry {
    fn to_json(&self, key: &Key) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("fingerprint".into(), Value::Str(format!("{:016x}", key.0))),
            ("domain".into(), Value::Str(key.1.clone())),
            ("depth".into(), Value::Int(key.2 as i64)),
            ("analysis".into(), Value::Str(key.3.clone())),
            ("params".into(), Value::Str(key.4.clone())),
            ("verdict".into(), Value::Str(self.outcome.verdict.clone())),
            (
                "details".into(),
                Value::Obj(
                    self.outcome.details.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                ),
            ),
        ];
        if let Some(stats) = self.space {
            fields.push((
                "space".into(),
                Value::Obj(vec![
                    ("depth".into(), Value::Int(stats.depth as i64)),
                    ("runs".into(), Value::Int(stats.runs as i64)),
                    ("views".into(), Value::Int(stats.views as i64)),
                    ("components".into(), Value::Int(stats.components as i64)),
                ]),
            ));
        }
        if let Some(cert) = &self.certificate {
            fields.push(("certificate".into(), cert.clone()));
        }
        Value::Obj(fields)
    }

    fn from_json(v: &Value) -> Option<(Key, DiskEntry)> {
        let fingerprint = u64::from_str_radix(v.get("fingerprint")?.as_str()?, 16).ok()?;
        let domain = v.get("domain")?.as_str()?.to_string();
        let depth = v.get_usize("depth")?;
        let analysis = v.get("analysis")?.as_str()?.to_string();
        let params = v.get("params")?.as_str()?.to_string();
        let verdict = v.get("verdict")?.as_str()?.to_string();
        let Value::Obj(detail_fields) = v.get("details")? else {
            return None;
        };
        let space = match v.get("space") {
            None => None,
            Some(obj) => Some(SpaceStats {
                depth: obj.get_usize("depth")?,
                runs: obj.get_usize("runs")?,
                views: obj.get_usize("views")?,
                components: obj.get_usize("components")?,
            }),
        };
        Some((
            (fingerprint, domain, depth, analysis, params),
            DiskEntry {
                outcome: Outcome { verdict, details: detail_fields.clone() },
                space,
                certificate: v.get("certificate").cloned(),
            },
        ))
    }
}

/// Whether a record's outcome may be journaled: computed to completion,
/// with no budget or wall-clock contingency. See the module docs.
pub fn persistable(record: &ScenarioRecord) -> bool {
    !record.budget_hit
        && record.outcome.verdict != "error"
        && record.outcome.verdict != "budget-exceeded"
        && !record.outcome.details.iter().any(|(k, _)| k == "timed_out")
}

/// A thread-safe persistent verdict cache over one directory; see the
/// module docs.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    entries: Mutex<HashMap<Key, DiskEntry>>,
    journal: Mutex<fs::File>,
    loaded: usize,
    hits: AtomicUsize,
    stores: AtomicUsize,
}

impl DiskCache {
    /// Open (creating if necessary) the cache directory, validate its
    /// salt, and load the journal. A salt mismatch discards the stale
    /// journal and starts fresh.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let mut span = tracer().span("journal.load");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let meta_path = dir.join(META_FILE);
        let journal_path = dir.join(JOURNAL_FILE);

        let salt = cache_salt();
        let fresh = match fs::read_to_string(&meta_path) {
            Ok(text) => {
                let stored = json::parse(&text)
                    .ok()
                    .and_then(|v| v.get("salt").and_then(Value::as_str).map(str::to_string));
                stored.as_deref() != Some(salt.as_str())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => true,
            Err(e) => return Err(e),
        };
        if fresh {
            // Stale or new: drop any old journal, stamp the current salt.
            match fs::remove_file(&journal_path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            let meta = Value::Obj(vec![("salt".into(), Value::Str(salt))]);
            fs::write(&meta_path, format!("{meta}\n"))?;
        }

        let mut entries = HashMap::new();
        match fs::read_to_string(&journal_path) {
            Ok(text) => {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    // A torn tail from a crashed append is skipped, not
                    // fatal; the scenario simply recomputes.
                    if let Some((key, entry)) =
                        json::parse(line).ok().as_ref().and_then(DiskEntry::from_json)
                    {
                        entries.insert(key, entry);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let journal = fs::OpenOptions::new().create(true).append(true).open(&journal_path)?;
        let loaded = entries.len();
        span.set_attr("loaded", loaded);
        span.set_attr("fresh", fresh);
        journal_counters().loaded.set(loaded as u64);
        Ok(DiskCache {
            dir,
            entries: Mutex::new(entries),
            journal: Mutex::new(journal),
            loaded,
            hits: AtomicUsize::new(0),
            stores: AtomicUsize::new(0),
        })
    }

    /// Open the cache named by a [`CacheConfig`], if it names one:
    /// `Ok(None)` when `disk_dir` is unset.
    ///
    /// # Errors
    /// Returns [`Error::Io`] (with the directory in the context) on
    /// filesystem failure.
    pub fn from_config(cfg: &CacheConfig) -> Result<Option<DiskCache>, Error> {
        match &cfg.disk_dir {
            None => Ok(None),
            Some(dir) => Self::open(dir)
                .map(Some)
                .map_err(|e| Error::io(format!("opening cache dir {}", dir.display()), e)),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries currently held (loaded plus stored this process).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("disk cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries loaded from the journal at open time.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries journaled by this process so far.
    pub fn stores(&self) -> usize {
        self.stores.load(Ordering::Relaxed)
    }

    /// The journaled outcome for a scenario cell, if present. `params` is
    /// the analysis-params code of the requesting configuration (see
    /// [`crate::runner::scenario_params`]); entries journaled under
    /// different params never answer.
    pub fn lookup(
        &self,
        fingerprint: u64,
        values: &[InputValue],
        depth: usize,
        analysis: AnalysisKind,
        params: &str,
    ) -> Option<DiskEntry> {
        let key: Key =
            (fingerprint, domain_code(values), depth, analysis.name().to_string(), params.into());
        let entry = self.entries.lock().expect("disk cache lock poisoned").get(&key).cloned();
        if entry.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        journal_counters().note_lookup(entry.is_some());
        entry
    }

    /// Journal an outcome (first writer wins; the entry is flushed before
    /// the in-memory map is updated, so a loadable journal line exists for
    /// everything lookups can see).
    ///
    /// # Errors
    /// Propagates filesystem errors; the in-memory map is unchanged then.
    pub fn store(
        &self,
        fingerprint: u64,
        values: &[InputValue],
        depth: usize,
        analysis: AnalysisKind,
        params: &str,
        entry: DiskEntry,
    ) -> io::Result<()> {
        let key: Key =
            (fingerprint, domain_code(values), depth, analysis.name().to_string(), params.into());
        self.store_entry(key, entry).map(|_| ())
    }

    /// Journal one keyed entry; `Ok(true)` when it was newly written,
    /// `Ok(false)` when the key was already claimed (first writer wins).
    fn store_entry(&self, key: Key, entry: DiskEntry) -> io::Result<bool> {
        // The entries lock is held across the journal append so two workers
        // finishing structurally aliased scenarios cannot both claim the
        // key: exactly one journal line per key, and reload order agrees
        // with first-writer-wins. Lock order is entries → journal
        // (`lookup` takes only entries; no inversion exists).
        let mut entries = self.entries.lock().expect("disk cache lock poisoned");
        if entries.contains_key(&key) {
            return Ok(false);
        }
        let line = entry.to_json(&key).to_string();
        {
            let mut journal = self.journal.lock().expect("disk cache journal lock poisoned");
            writeln!(journal, "{line}")?;
            journal.flush()?;
        }
        entries.insert(key, entry);
        self.stores.fetch_add(1, Ordering::Relaxed);
        journal_counters().stores.inc();
        Ok(true)
    }

    /// Every journaled entry as its journal-line JSON object, in
    /// deterministic (key-sorted) order — the `/v1/journal/segment`
    /// payload, and exactly the shape [`absorb`](Self::absorb) accepts on
    /// the receiving side.
    pub fn export_entries(&self) -> Vec<Value> {
        let entries = self.entries.lock().expect("disk cache lock poisoned");
        let mut keyed: Vec<(&Key, &DiskEntry)> = entries.iter().collect();
        keyed.sort_by(|a, b| a.0.cmp(b.0));
        keyed.into_iter().map(|(key, entry)| entry.to_json(key)).collect()
    }

    /// Absorb a peer's exported journal segment — the warm-start tier
    /// below memory and local disk. `salt` must equal this binary's
    /// [`cache_salt`] (verdicts journaled under another code version are
    /// refused wholesale, exactly like a stale local journal), and every
    /// entry must parse as a journal line; keys already present keep
    /// their local value (first writer wins). Returns how many entries
    /// were newly journaled.
    ///
    /// # Errors
    /// [`Error::CacheConflict`] on a salt mismatch or a malformed entry;
    /// [`Error::Io`] if the local journal append fails.
    pub fn absorb(&self, salt: &str, entries: &[Value]) -> Result<usize, Error> {
        let expected = cache_salt();
        if salt != expected {
            return Err(Error::CacheConflict {
                reason: format!(
                    "peer journal salt {salt:?} does not match this binary's {expected:?}; \
                     refusing to absorb verdicts from a different code version"
                ),
            });
        }
        let mut span = tracer().span("absorb");
        let mut absorbed = 0usize;
        for (i, value) in entries.iter().enumerate() {
            let Some((key, entry)) = DiskEntry::from_json(value) else {
                return Err(Error::CacheConflict {
                    reason: format!("peer journal entry {i} is malformed"),
                });
            };
            if self
                .store_entry(key, entry)
                .map_err(|e| Error::io("appending absorbed journal entries".to_string(), e))?
            {
                absorbed += 1;
            }
        }
        span.set_attr("entries", entries.len());
        span.set_attr("absorbed", absorbed);
        Ok(absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value as Json;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("consensus-lab-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry() -> DiskEntry {
        DiskEntry {
            outcome: Outcome::tag("separated")
                .with("mixed_components", Json::Int(0))
                .with("chain_found", Json::Bool(false)),
            space: Some(SpaceStats { depth: 2, runs: 36, views: 40, components: 3 }),
            certificate: None,
        }
    }

    #[test]
    fn store_then_lookup_roundtrips_across_instances() {
        let dir = tmp_dir("roundtrip");
        let values: &[InputValue] = &[0, 1];
        {
            let cache = DiskCache::open(&dir).unwrap();
            assert!(cache.is_empty());
            assert!(cache.lookup(7, values, 2, AnalysisKind::Bivalence, "").is_none());
            cache.store(7, values, 2, AnalysisKind::Bivalence, "", entry()).unwrap();
            assert_eq!(cache.stores(), 1);
            assert_eq!(cache.lookup(7, values, 2, AnalysisKind::Bivalence, "").unwrap(), entry());
        }
        // A second instance (≈ a second process) loads the journal.
        let warm = DiskCache::open(&dir).unwrap();
        assert_eq!(warm.loaded(), 1);
        assert_eq!(warm.lookup(7, values, 2, AnalysisKind::Bivalence, "").unwrap(), entry());
        assert_eq!(warm.hits(), 1);
        // Distinct key coordinates do not collide.
        assert!(warm.lookup(7, values, 3, AnalysisKind::Bivalence, "").is_none());
        assert!(warm.lookup(7, values, 2, AnalysisKind::ComponentStats, "").is_none());
        assert!(warm.lookup(8, values, 2, AnalysisKind::Bivalence, "").is_none());
        assert!(warm.lookup(7, &[0, 1, 2], 2, AnalysisKind::Bivalence, "").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn salt_mismatch_discards_stale_journal() {
        let dir = tmp_dir("salt");
        {
            let cache = DiskCache::open(&dir).unwrap();
            cache.store(1, &[0, 1], 1, AnalysisKind::Solvability, "wc3", entry()).unwrap();
        }
        // Forge a meta from an older code version.
        fs::write(dir.join(META_FILE), "{\"salt\":\"0.0.0+r0\"}\n").unwrap();
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.loaded(), 0, "stale journal must be discarded");
        assert!(reopened.lookup(1, &[0, 1], 1, AnalysisKind::Solvability, "wc3").is_none());
        // The directory is re-stamped with the current salt.
        let meta = fs::read_to_string(dir.join(META_FILE)).unwrap();
        assert!(meta.contains(&cache_salt()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_skipped_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let cache = DiskCache::open(&dir).unwrap();
            cache.store(1, &[0, 1], 1, AnalysisKind::Bivalence, "", entry()).unwrap();
        }
        // Simulate a crash mid-append.
        let mut journal = fs::OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
        journal.write_all(b"{\"fingerprint\":\"0000").unwrap();
        drop(journal);
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.loaded(), 1, "intact lines survive a torn tail");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistable_excludes_contingent_outcomes() {
        use crate::store::ScenarioRecord;
        let base = ScenarioRecord {
            index: 0,
            adversary: "x".into(),
            describe: String::new(),
            fingerprint: 1,
            n: 2,
            compact: true,
            depth: 1,
            analysis: AnalysisKind::Solvability,
            outcome: Outcome::tag("solvable"),
            expected: None,
            matches_expected: None,
            certificate: None,
            space: None,
            cached_space: None,
            budget_hit: false,
            wall_ms: 0.0,
        };
        assert!(persistable(&base));
        let budget = ScenarioRecord { budget_hit: true, ..base.clone() };
        assert!(!persistable(&budget));
        let errored = ScenarioRecord { outcome: Outcome::tag("error"), ..base.clone() };
        assert!(!persistable(&errored));
        let exceeded = ScenarioRecord { outcome: Outcome::tag("budget-exceeded"), ..base.clone() };
        assert!(!persistable(&exceeded));
        let timed = ScenarioRecord {
            outcome: Outcome::tag("passed").with("timed_out", Json::Bool(true)),
            ..base
        };
        assert!(!persistable(&timed));
    }

    #[test]
    fn params_are_a_key_dimension() {
        let dir = tmp_dir("params");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(9, &[0, 1], 1, AnalysisKind::Solvability, "wc3", entry()).unwrap();
        // A differently-configured requester must not be answered.
        assert!(cache.lookup(9, &[0, 1], 1, AnalysisKind::Solvability, "sc3").is_none());
        assert!(cache.lookup(9, &[0, 1], 1, AnalysisKind::Solvability, "wc0").is_none());
        assert!(cache.lookup(9, &[0, 1], 1, AnalysisKind::Solvability, "wc3").is_some());
        // Both configurations coexist in one journal.
        let other =
            DiskEntry { outcome: Outcome::tag("undecided"), space: None, certificate: None };
        cache.store(9, &[0, 1], 1, AnalysisKind::Solvability, "sc3", other).unwrap();
        assert_eq!(cache.stores(), 2);
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(
            reopened
                .lookup(9, &[0, 1], 1, AnalysisKind::Solvability, "wc3")
                .unwrap()
                .outcome
                .verdict,
            "separated"
        );
        assert_eq!(
            reopened
                .lookup(9, &[0, 1], 1, AnalysisKind::Solvability, "sc3")
                .unwrap()
                .outcome
                .verdict,
            "undecided"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_writer_wins_on_duplicate_store() {
        let dir = tmp_dir("dup");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(5, &[0, 1], 1, AnalysisKind::Bivalence, "", entry()).unwrap();
        let other = DiskEntry { outcome: Outcome::tag("mixed"), space: None, certificate: None };
        cache.store(5, &[0, 1], 1, AnalysisKind::Bivalence, "", other).unwrap();
        assert_eq!(cache.stores(), 1);
        assert_eq!(
            cache
                .lookup(5, &[0, 1], 1, AnalysisKind::Bivalence, "")
                .unwrap()
                .outcome
                .verdict,
            "separated"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
