//! The parallel scenario-sweep engine.
//!
//! [`SweepRunner`] executes a scenario grid on a pool of scoped worker
//! threads pulling indices from a shared atomic queue (the work-stealing
//! shape of a rayon `par_iter`, built on `std` because the build
//! environment is registry-less — see `crates/compat/README.md`). Results
//! land in per-index slots, so the output order is the grid order no matter
//! how the scheduling interleaves: identical grids produce identical result
//! files (modulo wall-clock fields).
//!
//! All space-hungry analyses pull their [`consensus_core::PrefixSpace`]s
//! through the shared
//! [`SpaceCache`], so one *(adversary, depth)* expansion serves every
//! analysis that needs it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use consensus_core::config::{AnalysisConfig, ExpandConfig};
use consensus_core::solvability::{SolvabilityChecker, UnsolvableCert, Verdict};
use consensus_core::{analysis, broadcast, fair, Certificate, UniversalAlgorithm};
use consensus_obs::metrics::registry;
use consensus_obs::trace::tracer;
use ptgraph::Value;
use simulator::algorithms::FloodMin;
use simulator::checker;

use crate::cache::{CacheStats, ExpandTotals, SpaceCache};
use crate::json::Value as Json;
use crate::persist::{persistable, DiskCache, DiskEntry};
use crate::scenario::{AnalysisKind, Scenario};
use crate::store::{Outcome, ResultStore, ScenarioRecord};

/// The input domain used by sweeps (binary consensus, as throughout the
/// paper's examples).
pub const SWEEP_VALUES: &[Value] = &[0, 1];

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    pub(crate) threads: usize,
    /// Soft per-scenario wall-clock limit; exceeding it flags the record
    /// (step budgets, not preemption, bound the actual work).
    pub(crate) time_limit: Option<Duration>,
    /// Analysis configuration applied to every solvability scenario
    /// (validity flavor, exact-chain search depth; the depth ladder ceiling
    /// comes from each scenario's own depth).
    pub(crate) analysis: AnalysisConfig,
    /// Whether a supplied disk cache may *answer* scenarios (it is always
    /// journaled to); the `Session` resume knob.
    pub(crate) consult_disk: bool,
}

/// A finished sweep: records in grid order plus engine telemetry.
#[derive(Debug)]
pub struct SweepReport {
    /// The result store (records in grid order).
    pub store: ResultStore,
    /// Cache counters accumulated over the sweep.
    pub cache: CacheStats,
    /// Expansion-engine telemetry accumulated over the sweep (shard
    /// counts, merge time, arena footprint).
    pub expand: ExpandTotals,
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Total wall time.
    pub wall: Duration,
}

impl SweepReport {
    /// Scenarios whose solvability verdict contradicted the catalog ground
    /// truth.
    pub fn mismatches(&self) -> Vec<&ScenarioRecord> {
        self.store
            .records()
            .iter()
            .filter(|r| r.matches_expected == Some(false))
            .collect()
    }

    /// One-paragraph human summary (the sweep's stdout footer).
    pub fn summary(&self) -> String {
        let stats = self.cache;
        format!(
            "{} scenarios on {} threads in {:.2?}; prefix-space constructions: {} \
             (cache hits: {}, ladder extensions: {}, disk hits: {}, budget misses: {}); \
             ground-truth mismatches: {}",
            self.scenarios,
            self.threads,
            self.wall,
            stats.builds,
            stats.hits,
            stats.ladder_hits,
            stats.disk_hits,
            stats.budget_misses,
            self.mismatches().len(),
        )
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner {
            threads: default_threads(),
            time_limit: None,
            analysis: AnalysisConfig::default(),
            consult_disk: true,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

impl SweepRunner {
    /// A runner with the default thread count (available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Legacy knob for the worker-thread count; prefer driving sweeps
    /// through a `Session` (its `workers` knob).
    #[deprecated(
        since = "0.1.0",
        note = "drive sweeps through `Session` (see `session::Session`)"
    )]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub(crate) fn workers(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the soft per-scenario time limit.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Execute `scenarios` against the shared `cache`; results come back in
    /// grid order regardless of scheduling.
    pub fn run(&self, scenarios: &[Scenario], cache: &SpaceCache) -> SweepReport {
        let entries: Vec<(usize, Scenario)> = scenarios.iter().cloned().enumerate().collect();
        self.run_indexed(&entries, cache, None)
    }

    /// Execute explicitly indexed scenarios — the shard/resume entry point:
    /// each `(index, scenario)` pair carries its *global grid index*, so
    /// records from partial runs (a shard of the grid, or the not-yet-done
    /// remainder of a resumed sweep) land with the indices the merged
    /// report needs. Outcomes are additionally answered from / journaled to
    /// `disk` when one is given.
    pub fn run_indexed(
        &self,
        entries: &[(usize, Scenario)],
        cache: &SpaceCache,
        disk: Option<&DiskCache>,
    ) -> SweepReport {
        let start = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioRecord>>> =
            entries.iter().map(|_| Mutex::new(None)).collect();

        // Workers run on their own threads: parent their analysis spans
        // to the caller's innermost span (the session's `sweep`).
        let span_parent = tracer().current_id();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(entries.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((index, scenario)) = entries.get(i) else {
                        break;
                    };
                    let mut span =
                        tracer().span_under(analysis_span_name(scenario.analysis), span_parent);
                    let record = execute_scenario_cfg(
                        *index,
                        scenario,
                        cache,
                        disk,
                        self.consult_disk,
                        self.time_limit,
                        &self.analysis,
                    );
                    span.set_attr("index", *index);
                    span.set_attr("adversary", record.adversary.as_str());
                    span.set_attr("depth", scenario.depth);
                    span.set_attr("verdict", record.outcome.verdict.as_str());
                    *slots[i].lock().expect("slot lock poisoned") = Some(record);
                });
            }
        });

        let records: Vec<ScenarioRecord> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every index was claimed by a worker")
            })
            .collect();
        let mut stats = cache.stats();
        if let Some(disk) = disk {
            stats.disk_hits = disk.hits();
        }
        SweepReport {
            store: ResultStore::new(records),
            cache: stats,
            expand: cache.expand_totals(),
            scenarios: entries.len(),
            threads: self.threads,
            wall: start.elapsed(),
        }
    }
}

/// Whether a solvability `outcome` agrees with the catalog's pinned ground
/// truth `expected`. Three-valued: `expected` pins the verdict at
/// *sufficient* depth, so an `undecided` at a shallow depth does not
/// contradict an eventually-solvable (or exactly-unsolvable) entry — only
/// a verdict of the opposite certainty does, and the flag is `None`
/// (inconclusive) there. Likewise an `undecided` that carries no evidence
/// (budget-starved, no mixing observed) confirms nothing for an
/// expected-mixed entry.
///
/// Works on the serialized outcome rather than the checker's `Verdict` so
/// the disk-cache path can re-derive the flag against the *current*
/// catalog at lookup time (journaled records must not freeze a stale
/// ground truth past a catalog change).
pub fn solvability_matches(
    expected: adversary::catalog::ExpectedOutcome,
    outcome: &Outcome,
    budget_hit: bool,
) -> Option<bool> {
    match (expected, outcome.verdict.as_str()) {
        (Some(true), "solvable") | (Some(false), "unsolvable") => Some(true),
        (Some(true), "unsolvable") | (Some(false), "solvable") => Some(false),
        (Some(_), "undecided") => None,
        (None, "undecided") => {
            let mixed = outcome
                .details
                .iter()
                .find(|(k, _)| k == "mixed_components")
                .and_then(|(_, v)| v.as_i64());
            if budget_hit || mixed == Some(0) {
                None
            } else {
                Some(true)
            }
        }
        (None, "solvable" | "unsolvable") => Some(false),
        // Not a solvability verdict tag: nothing to compare.
        _ => None,
    }
}

/// The static span name for one analysis kind (span names are `&'static
/// str` so the disabled tracer path stays allocation-free).
fn analysis_span_name(kind: AnalysisKind) -> &'static str {
    match kind {
        AnalysisKind::Solvability => "analysis.solvability",
        AnalysisKind::Bivalence => "analysis.bivalence",
        AnalysisKind::Broadcastability => "analysis.broadcastability",
        AnalysisKind::ComponentStats => "analysis.component-stats",
        AnalysisKind::SimCheck => "analysis.sim-check",
    }
}

/// The analysis-params code journaled with (and required from) each
/// persisted verdict: the `AnalysisConfig` dimensions that change
/// answers. Only solvability depends on the config — validity flavor and
/// the exact-chain cycle bound; every other analysis is
/// config-independent and codes as the empty string. Sessions whose
/// params differ never answer each other's journal entries.
pub fn scenario_params(analysis: AnalysisKind, cfg: &AnalysisConfig) -> String {
    match analysis {
        AnalysisKind::Solvability => {
            format!("{}c{}", if cfg.strong_validity { "s" } else { "w" }, cfg.max_chain_cycle)
        }
        _ => String::new(),
    }
}

/// Execute one scenario (also the `check` CLI path, with `index` 0).
pub fn execute_scenario(
    index: usize,
    scenario: &Scenario,
    cache: &SpaceCache,
    time_limit: Option<Duration>,
) -> ScenarioRecord {
    execute_scenario_with(index, scenario, cache, None, time_limit)
}

/// [`execute_scenario`] with an optional persistent verdict cache: a
/// journaled outcome for this `(fingerprint, domain, depth, analysis)`
/// cell is returned without touching a prefix space, and freshly computed
/// budget-independent outcomes are journaled for the next process.
pub fn execute_scenario_with(
    index: usize,
    scenario: &Scenario,
    cache: &SpaceCache,
    disk: Option<&DiskCache>,
    time_limit: Option<Duration>,
) -> ScenarioRecord {
    execute_scenario_cfg(index, scenario, cache, disk, true, time_limit, &AnalysisConfig::default())
}

/// The full execution seam used by the `Session` facade and the runner:
/// `consult_disk` gates *answering* from the journal (stores always
/// happen), and `analysis` configures every solvability checker spawned.
pub(crate) fn execute_scenario_cfg(
    index: usize,
    scenario: &Scenario,
    cache: &SpaceCache,
    disk: Option<&DiskCache>,
    consult_disk: bool,
    time_limit: Option<Duration>,
    analysis_cfg: &AnalysisConfig,
) -> ScenarioRecord {
    let start = Instant::now();
    let ma = match scenario.spec.build() {
        Ok(ma) => ma,
        Err(e) => {
            return ScenarioRecord {
                index,
                adversary: scenario.spec.label(),
                describe: String::new(),
                fingerprint: 0,
                n: 0,
                compact: false,
                depth: scenario.depth,
                analysis: scenario.analysis,
                outcome: Outcome::tag("error").with("error", Json::Str(e.to_string())),
                expected: None,
                matches_expected: None,
                certificate: None,
                space: None,
                cached_space: None,
                budget_hit: false,
                wall_ms: ms(start.elapsed()),
            }
        }
    };

    let mut record = ScenarioRecord {
        index,
        adversary: scenario.spec.label(),
        describe: ma.describe(),
        fingerprint: ma.fingerprint(),
        n: ma.n(),
        compact: ma.is_compact(),
        depth: scenario.depth,
        analysis: scenario.analysis,
        outcome: Outcome::tag("error"),
        expected: scenario.spec.expected(),
        matches_expected: None,
        certificate: None,
        space: None,
        cached_space: None,
        budget_hit: false,
        wall_ms: 0.0,
    };

    let params = scenario_params(scenario.analysis, analysis_cfg);
    if let Some(disk) = disk.filter(|_| consult_disk) {
        if let Some(entry) = disk.lookup(
            record.fingerprint,
            SWEEP_VALUES,
            scenario.depth,
            scenario.analysis,
            &params,
        ) {
            record.outcome = entry.outcome;
            record.space = entry.space;
            record.cached_space = entry.space.map(|_| true);
            if scenario.certificate {
                // The journaled certificate is handed out as-is: a warm
                // process serves checkable answers with zero re-expansions.
                record.certificate = entry.certificate;
            }
            if scenario.analysis == AnalysisKind::Solvability {
                if let Some(expected) = record.expected {
                    // Journaled entries are never budget-contingent.
                    record.matches_expected = solvability_matches(expected, &record.outcome, false);
                }
            }
            record.wall_ms = ms(start.elapsed());
            return record;
        }
    }

    // Extracted alongside every definitive solvability verdict (and always
    // journaled); attached to the record only when the scenario opted in.
    let mut extracted_cert: Option<Json> = None;
    match scenario.analysis {
        AnalysisKind::Solvability => {
            let checker = SolvabilityChecker::with_config(
                ma,
                analysis_cfg.max_depth(scenario.depth),
                ExpandConfig::with_budget(scenario.max_runs),
            );
            let verdict = checker.check_via(cache);
            extracted_cert = match &verdict {
                // The decision space at the certified depth is already in
                // the shared cache (the checker just expanded it), so this
                // lookup is a pure hit — extraction never re-expands.
                Verdict::Solvable(cert) => cache
                    .space_with_meta(
                        checker.adversary(),
                        SWEEP_VALUES,
                        cert.depth,
                        scenario.max_runs,
                    )
                    .ok()
                    .and_then(|(space, _)| {
                        Certificate::from_solvable(
                            cert,
                            &space,
                            &record.adversary,
                            record.fingerprint,
                        )
                    }),
                Verdict::Unsolvable(UnsolvableCert::ZeroChain(chain)) => {
                    Certificate::from_unsolvable(
                        chain,
                        &record.adversary,
                        record.fingerprint,
                        record.n,
                        SWEEP_VALUES,
                    )
                }
                Verdict::Undecided(_) => None,
            }
            .map(|c| c.to_json());
            record.outcome = solvability_outcome(&verdict);
            record.budget_hit = matches!(&verdict, Verdict::Undecided(rep) if rep.budget_hit);
            if let Some(expected) = record.expected {
                record.matches_expected =
                    solvability_matches(expected, &record.outcome, record.budget_hit);
            }
        }
        space_analysis => {
            match cache.space_with_meta(&ma, SWEEP_VALUES, scenario.depth, scenario.max_runs) {
                Err(err) => {
                    record.outcome = Outcome::tag("budget-exceeded")
                        .with("needed_runs", Json::Int(err.needed as i64));
                    record.budget_hit = true;
                }
                Ok((space, cached)) => {
                    record.space = Some(space.stats());
                    record.cached_space = Some(cached);
                    record.outcome = match space_analysis {
                        AnalysisKind::Bivalence => bivalence_outcome(&space),
                        AnalysisKind::Broadcastability => broadcast_outcome(&space),
                        AnalysisKind::ComponentStats => stats_outcome(&space),
                        AnalysisKind::SimCheck => sim_check_outcome(&space, &ma, scenario.max_runs),
                        AnalysisKind::Solvability => unreachable!("handled above"),
                    };
                }
            }
        }
    }

    let elapsed = start.elapsed();
    registry().histogram("stage.analysis").record_duration(elapsed);
    if let Some(limit) = time_limit {
        if elapsed > limit {
            record.outcome.details.push(("timed_out".into(), Json::Bool(true)));
        }
    }
    record.wall_ms = ms(elapsed);
    if scenario.certificate {
        record.certificate = extracted_cert.clone();
    }
    if let Some(disk) = disk {
        if persistable(&record) {
            // Best-effort: a full cache disk or permission error degrades
            // to a cold cache, never fails the sweep.
            let _ = disk.store(
                record.fingerprint,
                SWEEP_VALUES,
                scenario.depth,
                scenario.analysis,
                &params,
                DiskEntry {
                    outcome: record.outcome.clone(),
                    space: record.space,
                    certificate: extracted_cert,
                },
            );
        }
    }
    record
}

fn ms(d: Duration) -> f64 {
    // Rounded to ns precision so the JSON stays readable.
    (d.as_secs_f64() * 1e9).round() / 1e6
}

fn solvability_outcome(verdict: &Verdict) -> Outcome {
    match verdict {
        Verdict::Solvable(cert) => Outcome::tag("solvable")
            .with("solvable_depth", Json::Int(cert.depth as i64))
            .with("components", Json::Int(cert.component_count as i64))
            .with("all_broadcastable", Json::Bool(cert.broadcast.all_broadcastable()))
            .with("verified_runs", Json::Int(cert.verification.runs_checked as i64))
            .with("decision_round", Json::Int(cert.verification.max_decision_round as i64)),
        Verdict::Unsolvable(consensus_core::solvability::UnsolvableCert::ZeroChain(chain)) => {
            Outcome::tag("unsolvable")
                .with("chain_runs", Json::Int(chain.runs.len() as i64))
                .with(
                    "valences",
                    Json::Arr(vec![
                        Json::Int(chain.valences.0 as i64),
                        Json::Int(chain.valences.1 as i64),
                    ]),
                )
        }
        Verdict::Undecided(rep) => Outcome::tag("undecided")
            .with("mixed_components", Json::Int(rep.mixed_components as i64))
            .with("chain_found", Json::Bool(rep.chain.is_some())),
    }
}

fn bivalence_outcome(space: &consensus_core::PrefixSpace) -> Outcome {
    let rep = space.separation();
    if rep.is_separated() {
        return Outcome::tag("separated").with("mixed_components", Json::Int(0));
    }
    // The finite shadow of the forever-bivalent run: a valence-connecting
    // ε-chain inside a mixed component (Definition 5.16 / §6.1).
    let chain = fair::valence_chain(space, SWEEP_VALUES[0], SWEEP_VALUES[1]);
    let mut outcome = Outcome::tag("mixed")
        .with("mixed_components", Json::Int(rep.mixed_components.len() as i64));
    match chain {
        Some(chain) => {
            outcome = outcome
                .with("chain_found", Json::Bool(true))
                .with("chain_links", Json::Int(chain.links.len() as i64));
        }
        None => outcome = outcome.with("chain_found", Json::Bool(false)),
    }
    outcome
}

fn broadcast_outcome(space: &consensus_core::PrefixSpace) -> Outcome {
    let rep = broadcast::broadcast_report(space);
    let failing = rep.failing_components();
    let worst_round = rep
        .components
        .iter()
        .filter_map(|c| c.best().map(|(_, t)| t))
        .max()
        .unwrap_or(0);
    Outcome::tag(if rep.all_broadcastable() {
        "broadcastable"
    } else {
        "obstructed"
    })
    .with("components", Json::Int(rep.components.len() as i64))
    .with("failing_components", Json::Int(failing.len() as i64))
    .with("worst_completion_round", Json::Int(worst_round as i64))
}

fn stats_outcome(space: &consensus_core::PrefixSpace) -> Outcome {
    let rep = analysis::report(space);
    let largest = rep.components.iter().map(|c| c.size).max().unwrap_or(0);
    let mut outcome = Outcome::tag(if rep.separated { "separated" } else { "mixed" })
        .with("runs", Json::Int(rep.run_count as i64))
        .with("views", Json::Int(rep.view_count as i64))
        .with("components", Json::Int(rep.components.len() as i64))
        .with("mixed_components", Json::Int(rep.mixed_count() as i64))
        .with("largest_component", Json::Int(largest as i64));
    if let Some(d) = rep.min_class_distance {
        outcome = outcome.with("min_class_distance", Json::Float(d.as_f64()));
    }
    outcome
}

fn sim_check_outcome(
    space: &consensus_core::PrefixSpace,
    ma: &adversary::DynMA,
    max_runs: usize,
) -> Outcome {
    let cfg = checker::CheckConfig::at_depth(space.depth()).max_runs(max_runs);
    if space.separation().is_separated() {
        // Synthesize the universal algorithm from the (shared) space and
        // verify it exhaustively at the space's depth.
        let alg = UniversalAlgorithm::synthesize(space).expect("separated space must synthesize");
        match checker::check(&alg, ma, SWEEP_VALUES, &cfg) {
            Ok(rep) => Outcome::tag(if rep.passed() { "passed" } else { "failed" })
                .with("algorithm", Json::Str("universal".into()))
                .with("runs_checked", Json::Int(rep.runs_checked as i64))
                .with("violations", Json::Int(rep.violations.len() as i64))
                .with("decision_round", Json::Int(rep.max_decision_round as i64)),
            Err(err) => Outcome::tag("budget-exceeded")
                .with("algorithm", Json::Str("universal".into()))
                .with("needed_runs", Json::Int(err.needed as i64)),
        }
    } else {
        // No algorithm can exist on a mixed space (Corollary 5.6); exhibit
        // the obstruction on the reference flooding algorithm instead.
        let alg = FloodMin::new(space.depth());
        match checker::check(&alg, ma, SWEEP_VALUES, &cfg) {
            Ok(rep) => Outcome::tag(if rep.passed() { "passed" } else { "failed" })
                .with("algorithm", Json::Str("floodmin".into()))
                .with("runs_checked", Json::Int(rep.runs_checked as i64))
                .with("violations", Json::Int(rep.violations.len() as i64)),
            Err(err) => Outcome::tag("budget-exceeded")
                .with("algorithm", Json::Str("floodmin".into()))
                .with("needed_runs", Json::Int(err.needed as i64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AdversarySpec, GridBuilder};

    fn catalog_scenario(name: &str, depth: usize, analysis: AnalysisKind) -> Scenario {
        Scenario {
            spec: AdversarySpec::catalog(name),
            depth,
            analysis,
            max_runs: 2_000_000,
            certificate: false,
        }
    }

    #[test]
    fn solvable_entry_reports_solvable() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("cgp-reduced-lossy-link", 3, AnalysisKind::Solvability),
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "solvable");
        assert_eq!(rec.matches_expected, Some(true));
    }

    #[test]
    fn exact_unsolvable_entry_reports_unsolvable() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("message-loss-2-2", 3, AnalysisKind::Solvability),
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "unsolvable");
        assert_eq!(rec.matches_expected, Some(true));
    }

    #[test]
    fn mixed_entry_reports_undecided_with_chain() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("sw-lossy-link", 3, AnalysisKind::Solvability),
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "undecided");
        assert_eq!(rec.matches_expected, Some(true));
        let chain = rec
            .outcome
            .details
            .iter()
            .find(|(k, _)| *k == "chain_found")
            .map(|(_, v)| v.clone());
        assert_eq!(chain, Some(Json::Bool(true)));
    }

    #[test]
    fn analyses_share_one_space_per_depth() {
        let cache = SpaceCache::new();
        for analysis in [
            AnalysisKind::Bivalence,
            AnalysisKind::Broadcastability,
            AnalysisKind::ComponentStats,
            AnalysisKind::SimCheck,
        ] {
            let rec =
                execute_scenario(0, &catalog_scenario("sw-lossy-link", 2, analysis), &cache, None);
            assert_ne!(rec.outcome.verdict, "error", "{analysis}: {rec:?}");
        }
        let stats = cache.stats();
        assert_eq!(stats.builds, 1, "four analyses, one expansion: {stats:?}");
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn sweep_results_in_grid_order_any_thread_count() {
        let grid = GridBuilder::new(2, 2_000_000).over_specs(&[
            AdversarySpec::catalog("cgp-reduced-lossy-link"),
            AdversarySpec::catalog("sw-lossy-link"),
        ]);
        let single = SweepRunner::new().workers(1).run(&grid, &SpaceCache::new());
        let multi = SweepRunner::new().workers(8).run(&grid, &SpaceCache::new());
        let strip = |r: &SweepReport| {
            r.store
                .records()
                .iter()
                .map(|rec| rec.to_json().without_keys(crate::store::TIMING_FIELDS))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&single), strip(&multi));
        for (i, rec) in multi.store.records().iter().enumerate() {
            assert_eq!(rec.index, i);
        }
    }

    #[test]
    fn sim_check_verifies_universal_on_separated_space() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("cgp-reduced-lossy-link", 2, AnalysisKind::SimCheck),
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "passed");
    }

    #[test]
    fn sim_check_exhibits_floodmin_failure_on_mixed_space() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("sw-lossy-link", 2, AnalysisKind::SimCheck),
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "failed");
    }

    #[test]
    fn bad_spec_is_an_error_record_not_a_panic() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            7,
            &Scenario {
                spec: AdversarySpec::catalog("no-such-entry"),
                depth: 2,
                analysis: AnalysisKind::Solvability,
                max_runs: 1000,
                certificate: false,
            },
            &cache,
            None,
        );
        assert_eq!(rec.outcome.verdict, "error");
        assert_eq!(rec.index, 7);
    }

    #[test]
    fn budget_exhaustion_is_reported_per_scenario() {
        let cache = SpaceCache::new();
        let rec = execute_scenario(
            0,
            &catalog_scenario("sw-lossy-link", 6, AnalysisKind::ComponentStats),
            &cache,
            None,
        );
        // 3^6 sequences × 4 inputs = 2916 runs fits; shrink the budget (on
        // a cold cache — a warm one would rightly serve the cached space).
        let tiny = Scenario {
            max_runs: 10,
            ..catalog_scenario("sw-lossy-link", 6, AnalysisKind::ComponentStats)
        };
        let rec2 = execute_scenario(1, &tiny, &SpaceCache::new(), None);
        assert_ne!(rec.outcome.verdict, "budget-exceeded");
        assert_eq!(rec2.outcome.verdict, "budget-exceeded");
        assert!(rec2.budget_hit);
    }
}
