//! The serializable result store: scenario records, JSONL and CSV emission.
//!
//! Records carry three layers: identity (scenario index, adversary label,
//! fingerprint, depth, analysis), outcome (verdict plus analysis-specific
//! detail fields), and telemetry (state-space sizes, cache hit flag,
//! wall-clock time). Two telemetry fields are scheduling-dependent — the
//! wall clock, and which concurrent requester won a cache-build race —
//! and [`TIMING_FIELDS`] names them so tests and downstream tooling can
//! compare result files modulo that nondeterminism.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use consensus_core::space::SpaceStats;

use crate::json::{self, Value};
use crate::scenario::AnalysisKind;

/// JSONL fields whose values may vary between identical runs: wall-clock
/// time, and the cache-hit flag (a race between workers decides which
/// request builds a shared space).
pub const TIMING_FIELDS: &[&str] = &["wall_ms", "cached_space"];

/// The outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The verdict tag: `solvable`, `unsolvable`, `undecided`, `separated`,
    /// `mixed`, `broadcastable`, `obstructed`, `passed`, `failed`,
    /// `budget-exceeded`, or `error`.
    pub verdict: String,
    /// Analysis-specific detail fields, deterministic and order-stable
    /// (owned keys so outcomes can be reconstituted from stored JSONL —
    /// the resume/merge/disk-cache paths).
    pub details: Vec<(String, Value)>,
}

impl Outcome {
    /// An outcome with no details.
    pub fn tag(verdict: &str) -> Self {
        Outcome { verdict: verdict.to_string(), details: Vec::new() }
    }

    /// Append a detail field.
    pub fn with(mut self, key: impl Into<String>, value: Value) -> Self {
        self.details.push((key.into(), value));
        self
    }
}

/// One executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// Position in the scenario grid (result order is grid order).
    pub index: usize,
    /// The spec label (catalog name or pool description).
    pub adversary: String,
    /// The adversary's self-description.
    pub describe: String,
    /// Structural fingerprint (the cache key component).
    pub fingerprint: u64,
    /// Number of processes.
    pub n: usize,
    /// Whether the adversary is compact.
    pub compact: bool,
    /// The scenario depth.
    pub depth: usize,
    /// The analysis that ran.
    pub analysis: AnalysisKind,
    /// Verdict and details.
    pub outcome: Outcome,
    /// Catalog ground truth (`None` = not a catalog entry / not pinned).
    pub expected: Option<Option<bool>>,
    /// Whether the solvability verdict matched `expected` (solvability
    /// scenarios on catalog entries only).
    pub matches_expected: Option<bool>,
    /// The checkable certificate (the `consensus-cert/v1` JSON object of
    /// [`consensus_core::certificate`]), attached when the scenario opted
    /// in and the verdict is definitive.
    pub certificate: Option<Value>,
    /// State-space telemetry of the deepest space this scenario touched.
    pub space: Option<SpaceStats>,
    /// Whether that space came out of the shared cache.
    pub cached_space: Option<bool>,
    /// Whether a step budget cut the analysis short.
    pub budget_hit: bool,
    /// Wall-clock milliseconds (timing; excluded from determinism).
    pub wall_ms: f64,
}

impl ScenarioRecord {
    /// The record as an order-stable JSON object.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("index".into(), Value::Int(self.index as i64)),
            ("adversary".into(), Value::Str(self.adversary.clone())),
            ("describe".into(), Value::Str(self.describe.clone())),
            ("fingerprint".into(), Value::Str(format!("{:016x}", self.fingerprint))),
            ("n".into(), Value::Int(self.n as i64)),
            ("compact".into(), Value::Bool(self.compact)),
            ("depth".into(), Value::Int(self.depth as i64)),
            ("analysis".into(), Value::Str(self.analysis.name().into())),
            ("verdict".into(), Value::Str(self.outcome.verdict.clone())),
        ];
        for (k, v) in &self.outcome.details {
            fields.push((k.clone(), v.clone()));
        }
        fields.push((
            "expected".into(),
            match self.expected {
                None => Value::Null,
                Some(None) => Value::Str("mixed".into()),
                Some(Some(true)) => Value::Str("solvable".into()),
                Some(Some(false)) => Value::Str("unsolvable".into()),
            },
        ));
        if let Some(m) = self.matches_expected {
            fields.push(("matches_expected".into(), Value::Bool(m)));
        }
        // After `expected`, the positional-details anchor: everything
        // between `verdict` and `expected` is outcome detail, so the
        // certificate object must land strictly after.
        if let Some(cert) = &self.certificate {
            fields.push(("certificate".into(), cert.clone()));
        }
        if let Some(stats) = self.space {
            fields.push((
                "space".into(),
                Value::Obj(vec![
                    ("runs".into(), Value::Int(stats.runs as i64)),
                    ("views".into(), Value::Int(stats.views as i64)),
                    ("components".into(), Value::Int(stats.components as i64)),
                ]),
            ));
        }
        if let Some(cached) = self.cached_space {
            fields.push(("cached_space".into(), Value::Bool(cached)));
        }
        fields.push(("budget_hit".into(), Value::Bool(self.budget_hit)));
        fields.push(("wall_ms".into(), Value::Float(self.wall_ms)));
        Value::Obj(fields)
    }

    /// Reconstitute a record from its [`to_json`](Self::to_json) form —
    /// the inverse used by `--resume`, `merge`, and the disk cache. Detail
    /// fields are recovered positionally: everything between `verdict` and
    /// `expected` belongs to the outcome (those two anchors are emitted
    /// unconditionally).
    ///
    /// # Errors
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(v: &Value) -> Result<ScenarioRecord, String> {
        let Value::Obj(fields) = v else {
            return Err("record is not a JSON object".to_string());
        };
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let int_field = |key: &str| -> Result<usize, String> {
            v.get_usize(key).ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("missing boolean field {key:?}"))
        };

        let fingerprint_hex = str_field("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|_| format!("bad fingerprint {fingerprint_hex:?}"))?;
        let analysis_name = str_field("analysis")?;
        let analysis = AnalysisKind::parse(&analysis_name).map_err(|e| e.to_string())?;
        let depth = int_field("depth")?;

        let verdict_at = fields
            .iter()
            .position(|(k, _)| k == "verdict")
            .ok_or_else(|| "missing field \"verdict\"".to_string())?;
        let expected_at = fields
            .iter()
            .position(|(k, _)| k == "expected")
            .ok_or_else(|| "missing field \"expected\"".to_string())?;
        if expected_at < verdict_at {
            return Err("field order corrupted: \"expected\" precedes \"verdict\"".to_string());
        }
        let details: Vec<(String, Value)> = fields[verdict_at + 1..expected_at].to_vec();
        let expected = match &fields[expected_at].1 {
            Value::Null => None,
            Value::Str(s) if s == "mixed" => Some(None),
            Value::Str(s) if s == "solvable" => Some(Some(true)),
            Value::Str(s) if s == "unsolvable" => Some(Some(false)),
            other => return Err(format!("bad expected value {other}")),
        };
        let space = match v.get("space") {
            None => None,
            Some(obj) => {
                let field = |key: &str| -> Result<usize, String> {
                    obj.get_usize(key).ok_or_else(|| format!("missing space field {key:?}"))
                };
                // Space analyses always record the space at the scenario
                // depth (solvability records carry no space object).
                Some(SpaceStats {
                    depth,
                    runs: field("runs")?,
                    views: field("views")?,
                    components: field("components")?,
                })
            }
        };
        Ok(ScenarioRecord {
            index: int_field("index")?,
            adversary: str_field("adversary")?,
            describe: str_field("describe")?,
            fingerprint,
            n: int_field("n")?,
            compact: bool_field("compact")?,
            depth,
            analysis,
            outcome: Outcome { verdict: str_field("verdict")?, details },
            expected,
            matches_expected: v.get("matches_expected").and_then(Value::as_bool),
            certificate: v.get("certificate").cloned(),
            space,
            cached_space: v.get("cached_space").and_then(Value::as_bool),
            budget_hit: bool_field("budget_hit")?,
            wall_ms: match v.get("wall_ms") {
                Some(Value::Float(x)) => *x,
                Some(Value::Int(i)) => *i as f64,
                _ => return Err("missing numeric field \"wall_ms\"".to_string()),
            },
        })
    }

    /// The scenario-identity key `(adversary label, depth, analysis)` —
    /// what `--resume` and shard merging match records on.
    pub fn identity(&self) -> (String, usize, AnalysisKind) {
        (self.adversary.clone(), self.depth, self.analysis)
    }

    /// The CSV summary row (see [`csv_header`]).
    pub fn to_csv_row(&self) -> String {
        let space = self.space.unwrap_or(SpaceStats {
            depth: self.depth,
            runs: 0,
            views: 0,
            components: 0,
        });
        [
            self.index.to_string(),
            csv_quote(&self.adversary),
            self.depth.to_string(),
            self.analysis.name().to_string(),
            csv_quote(&self.outcome.verdict),
            match self.expected {
                None => String::new(),
                Some(None) => "mixed".into(),
                Some(Some(true)) => "solvable".into(),
                Some(Some(false)) => "unsolvable".into(),
            },
            self.matches_expected.map(|m| m.to_string()).unwrap_or_default(),
            space.runs.to_string(),
            space.views.to_string(),
            space.components.to_string(),
            self.cached_space.map(|c| c.to_string()).unwrap_or_default(),
            self.budget_hit.to_string(),
            format!("{:.3}", self.wall_ms),
        ]
        .join(",")
    }
}

/// The CSV header matching [`ScenarioRecord::to_csv_row`].
pub fn csv_header() -> &'static str {
    "index,adversary,depth,analysis,verdict,expected,matches_expected,\
     runs,views,components,cached_space,budget_hit,wall_ms"
}

fn csv_quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// An ordered collection of records with JSONL/CSV emission.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<ScenarioRecord>,
}

impl ResultStore {
    /// Wrap records (already in grid order).
    pub fn new(records: Vec<ScenarioRecord>) -> Self {
        ResultStore { records }
    }

    /// The records.
    pub fn records(&self) -> &[ScenarioRecord] {
        &self.records
    }

    /// Consume the store, yielding the records (the single-query path of
    /// `Session::check` pops its one record this way).
    pub fn into_records(self) -> Vec<ScenarioRecord> {
        self.records
    }

    /// One JSON object per line, in grid order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// The CSV summary (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Write `results.jsonl` and `summary.csv` under `dir` (created if
    /// missing); returns the two paths.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_files(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        fs::create_dir_all(dir)?;
        let jsonl = dir.join("results.jsonl");
        let csv = dir.join("summary.csv");
        fs::write(&jsonl, self.to_jsonl())?;
        fs::write(&csv, self.to_csv())?;
        Ok((jsonl, csv))
    }
}

/// Parse a JSONL result file back into full [`ScenarioRecord`]s (the
/// resume/merge read path).
///
/// # Errors
/// Returns `(line_number, description)` for the first malformed line.
pub fn parse_records(text: &str) -> Result<Vec<ScenarioRecord>, (usize, String)> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            json::parse(line)
                .map_err(|e| (i + 1, e.to_string()))
                .and_then(|v| ScenarioRecord::from_json(&v).map_err(|e| (i + 1, e)))
        })
        .collect()
}

/// Parse a JSONL result file back into JSON objects (for `report`).
///
/// # Errors
/// Returns the first malformed line as `(line_number, error)`.
pub fn parse_jsonl(text: &str) -> Result<Vec<Value>, (usize, json::ParseError)> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| json::parse(line).map_err(|e| (i + 1, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ScenarioRecord {
        ScenarioRecord {
            index: 3,
            adversary: "sw-lossy-link".into(),
            describe: "oblivious(|pool|=3)".into(),
            fingerprint: 0xdead_beef,
            n: 2,
            compact: true,
            depth: 2,
            analysis: AnalysisKind::Solvability,
            outcome: Outcome::tag("undecided")
                .with("mixed_components", Value::Int(1))
                .with("chain_found", Value::Bool(true)),
            expected: Some(None),
            matches_expected: Some(true),
            certificate: None,
            space: Some(SpaceStats { depth: 2, runs: 36, views: 40, components: 3 }),
            cached_space: Some(false),
            budget_hit: false,
            wall_ms: 1.25,
        }
    }

    #[test]
    fn json_roundtrips_and_orders_keys() {
        let r = record();
        let line = r.to_json().to_string();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("adversary").unwrap().as_str(), Some("sw-lossy-link"));
        assert_eq!(v.get("mixed_components").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("space").unwrap().get("runs").unwrap().as_i64(), Some(36));
        assert!(line.starts_with(r#"{"index":3,"adversary":"#));
        assert!(line.ends_with("\"wall_ms\":1.25}"));
    }

    #[test]
    fn timing_strip_makes_records_comparable() {
        let mut a = record();
        let mut b = record();
        a.wall_ms = 1.0;
        b.wall_ms = 999.0;
        assert_ne!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(
            a.to_json().without_keys(TIMING_FIELDS),
            b.to_json().without_keys(TIMING_FIELDS)
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let store = ResultStore::new(vec![record()]);
        let csv = store.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), csv_header());
        let row = lines.next().unwrap();
        assert!(row.starts_with("3,sw-lossy-link,2,solvability,undecided,mixed,true,36,40,3,"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn record_roundtrips_through_json_byte_identically() {
        let r = record();
        let line = r.to_json().to_string();
        let back = ScenarioRecord::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, r);
        // Byte-stable re-emission is what makes shard merging exact.
        assert_eq!(back.to_json().to_string(), line);
        assert_eq!(back.to_csv_row(), r.to_csv_row());
        assert_eq!(back.identity(), ("sw-lossy-link".to_string(), 2, AnalysisKind::Solvability));
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        for bad in [
            r#"{"index":0}"#,
            r#"[1,2]"#,
            r#"{"index":0,"adversary":"a","describe":"","fingerprint":"zz","n":2,"compact":true,"depth":1,"analysis":"solvability","verdict":"solvable","expected":null,"budget_hit":false,"wall_ms":1.0}"#,
            r#"{"index":0,"adversary":"a","describe":"","fingerprint":"ff","n":2,"compact":true,"depth":1,"analysis":"nope","verdict":"solvable","expected":null,"budget_hit":false,"wall_ms":1.0}"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(ScenarioRecord::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn jsonl_parses_back() {
        let store = ResultStore::new(vec![record(), record()]);
        let parsed = parse_jsonl(&store.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].get("verdict").unwrap().as_str(), Some("undecided"));
    }
}
