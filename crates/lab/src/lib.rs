//! **The consensus lab** — a batch experiment-orchestration layer over the
//! Nowak–Schmid–Winkler machinery (PODC 2019, arXiv:1905.09590).
//!
//! The paper's theorems are exercised one adversary at a time by the
//! `consensus-core` checkers; production workloads ask the opposite
//! question: *run every analysis over every adversary in a family, fast,
//! and store the answers*. This crate treats "check one adversary at one
//! depth with one analysis" as a unit of traffic — a [`scenario::Scenario`]
//! — and provides:
//!
//! * [`session`] — the **unified facade**: a [`session::Session`] owning
//!   the caches and worker pools once (built from typed
//!   [`consensus_core::config`] structs), answering single
//!   [`session::Query`]s and million-scenario batches through one code
//!   path;
//! * [`scenario`] — scenario specs (catalog entries or parsed pools ×
//!   depth × analysis kind) and deterministic grid builders;
//! * [`runner`] — the parallel [`runner::SweepRunner`]: scoped worker
//!   threads pulling from a shared queue, per-scenario step budgets,
//!   grid-ordered (deterministic) results;
//! * [`cache`] — the shared [`cache::SpaceCache`]: prefix spaces memoized
//!   by *(structural adversary fingerprint, input domain, depth)* and
//!   plugged into the core checker through
//!   [`consensus_core::solvability::SpaceSource`], so solvability,
//!   bivalence, broadcastability, component-stats, and simulator checks on
//!   the same cell all pay for **one** expansion (paper operations:
//!   Definition 6.2's ε-approximation is the shared object). Misses with a
//!   cached shallower space for the same *(fingerprint, domain)* are
//!   served by the **depth ladder** — one-round
//!   [`consensus_core::PrefixSpace::extended_from`] extensions instead of
//!   a from-scratch re-expansion;
//! * [`persist`] — the on-disk [`persist::DiskCache`]: deterministic
//!   verdicts (plus compact space digests) journaled to a salted cache
//!   directory, so a second sweep in a *new process* answers warm
//!   scenarios with zero expansions;
//! * [`store`] — the serde-style result store: order-stable JSONL records
//!   plus a CSV summary, with wall-time and state-space telemetry;
//! * [`report`] — aggregation over stored results;
//! * [`json`] — the dependency-free JSON encoder/parser backing the store.
//!
//! The `consensus-lab` binary exposes all of this as `sweep`, `check`,
//! `catalog`, and `report` subcommands.
//!
//! # Quickstart
//!
//! ```
//! use consensus_lab::scenario::{AdversarySpec, AnalysisKind};
//! use consensus_lab::session::{Query, Session};
//!
//! // Solvability × bivalence over one adversary at depths 1..=2.
//! let queries = Query::grid(
//!     &[AdversarySpec::catalog("cgp-reduced-lossy-link")],
//!     2,
//!     &[AnalysisKind::Solvability, AnalysisKind::Bivalence],
//! );
//! let session = Session::new().workers(2);
//! let report = session.check_many(&queries);
//! assert_eq!(report.store.records().len(), 4);
//! // The memoization cache built strictly fewer spaces than scenarios ran.
//! assert!(report.cache.builds < report.scenarios);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod gate;
/// The dependency-free JSON codec backing the store — extracted to the
/// shared `consensus-json` crate (so `consensus-serve` parses request
/// bodies with the same codec) and re-exported here under its long-time
/// path.
pub use json;
pub mod persist;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod store;
pub mod trace;

pub use cache::SpaceCache;
pub use consensus_core::config::{AnalysisConfig, CacheConfig, ExpandConfig};
pub use consensus_core::error::{Error, SpecError};
pub use persist::DiskCache;
pub use runner::{SweepReport, SweepRunner};
pub use scenario::{AdversarySpec, AnalysisKind, GridBuilder, Scenario, Shard};
pub use session::{Query, QueryResult, Session};
pub use store::{ResultStore, ScenarioRecord};
