//! The unified `Session`/`Query` facade — one typed, batch-first entry
//! point over the whole stack.
//!
//! The paper's characterization is, operationally, a query: *is consensus
//! solvable under adversary `A` at resolution `d`?* Production workloads
//! ask it (and its sibling analyses) millions of times over adversary
//! families. Before this module, answering one query meant choosing among
//! five `PrefixSpace` builders, wiring a `SpaceCache`, a `DiskCache`, and
//! a `SweepRunner` by hand, and threading `threads`/`max_runs` knobs
//! positionally through each. A [`Session`] owns all of that once:
//!
//! * the shared in-memory [`SpaceCache`] (prefix spaces memoized by
//!   *(fingerprint, domain, depth)* with depth-laddering),
//! * the optional persistent verdict journal ([`DiskCache`]),
//! * the scenario worker pool and the expansion-shard configuration,
//!
//! and exposes two methods: [`Session::check`] for one [`Query`] and
//! [`Session::check_many`] for a batch. Both route through the *same*
//! sweep machinery ([`SweepRunner`]), so a single check and a
//! million-scenario sweep share one code path — and one cache.
//!
//! ```
//! use consensus_lab::session::{Query, Session};
//! use consensus_lab::scenario::AnalysisKind;
//!
//! let session = Session::new();
//! // One query…
//! let record = session
//!     .check(&Query::catalog("cgp-reduced-lossy-link", 3, AnalysisKind::Solvability))
//!     .unwrap();
//! assert_eq!(record.outcome.verdict, "solvable");
//! // …and a batch over the same session share the space cache.
//! let queries = Query::catalog_grid(2, &AnalysisKind::ALL);
//! let report = session.check_many(&queries);
//! assert_eq!(report.store.records().len(), queries.len());
//! assert!(report.cache.builds < report.scenarios);
//! ```

use std::time::Duration;

use adversary::enumerate::BudgetExceeded;
use consensus_core::config::{AnalysisConfig, CacheConfig, ExpandConfig};
use consensus_core::error::Error;
use consensus_core::{CertError, Certificate};

use crate::cache::SpaceCache;
use crate::persist::DiskCache;
use crate::runner::{SweepReport, SweepRunner};
use crate::scenario::{AdversarySpec, AnalysisKind, GridBuilder, Scenario};
use crate::store::ScenarioRecord;

/// One question for the machinery: *(adversary, resolution depth,
/// analysis)*. Budgets and engine knobs live in the [`Session`]'s configs,
/// not here — a query is pure identity, cheap to clone and grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The adversary under analysis.
    pub spec: AdversarySpec,
    /// The resolution depth `t` (`ε = 2^{−t}`).
    pub depth: usize,
    /// The analysis to run on the `(adversary, depth)` cell.
    pub analysis: AnalysisKind,
    /// Attach the checkable [`Certificate`] to the record's JSON, when the
    /// verdict is definitive (see [`Query::with_certificate`]). Off by
    /// default: certificates are opt-in payload, not part of the byte-stable
    /// baseline record.
    pub certificate: bool,
}

/// The answer to one [`Query`]: the full scenario record (verdict, detail
/// fields, state-space telemetry, ground-truth comparison).
pub type QueryResult = ScenarioRecord;

impl Query {
    /// A query over an explicit spec.
    pub fn new(spec: AdversarySpec, depth: usize, analysis: AnalysisKind) -> Self {
        Query { spec, depth, analysis, certificate: false }
    }

    /// Request the checkable certificate: the record's JSON gains a
    /// `certificate` field carrying the [`Certificate`] artifact whenever
    /// the verdict is definitive (solvable/unsolvable under
    /// [`AnalysisKind::Solvability`]). Verify it offline with
    /// [`verify_certificate`] or `consensus-lab verify-cert`.
    #[must_use]
    pub fn with_certificate(mut self) -> Self {
        self.certificate = true;
        self
    }

    /// A query over a named catalog entry.
    pub fn catalog(name: &str, depth: usize, analysis: AnalysisKind) -> Self {
        Query::new(AdversarySpec::catalog(name), depth, analysis)
    }

    /// A query over a spec-language string (the shared parser of
    /// [`adversary::spec`]): `Query::spec("union(pool(->), pool(<-))", 3,
    /// AnalysisKind::Solvability)`.
    ///
    /// # Errors
    /// Returns [`Error::Spec`] locating the first malformed byte.
    pub fn spec(spec: &str, depth: usize, analysis: AnalysisKind) -> Result<Self, Error> {
        Ok(Query::new(AdversarySpec::parse(spec)?, depth, analysis))
    }

    /// The spec × depth × analysis grid over explicit specs, in the
    /// canonical sweep order (depths `1..=max_depth`, analyses in
    /// [`AnalysisKind::ALL`] order).
    pub fn grid(
        specs: &[AdversarySpec],
        max_depth: usize,
        analyses: &[AnalysisKind],
    ) -> Vec<Query> {
        // Delegate to the scenario GridBuilder so query grids and legacy
        // scenario grids can never drift apart in ordering.
        GridBuilder::new(max_depth, 0)
            .analyses(analyses)
            .over_specs(specs)
            .into_iter()
            .map(|s| Query {
                spec: s.spec,
                depth: s.depth,
                analysis: s.analysis,
                certificate: false,
            })
            .collect()
    }

    /// [`grid`](Self::grid) over the whole built-in catalog.
    pub fn catalog_grid(max_depth: usize, analyses: &[AnalysisKind]) -> Vec<Query> {
        let specs: Vec<AdversarySpec> = adversary::catalog::entries()
            .iter()
            .map(|e| AdversarySpec::catalog(e.name))
            .collect();
        Self::grid(&specs, max_depth, analyses)
    }

    /// A human-readable one-liner.
    pub fn label(&self) -> String {
        format!("{}@{}/{}", self.spec.label(), self.depth, self.analysis)
    }

    fn to_scenario(&self, max_runs: usize) -> Scenario {
        Scenario {
            spec: self.spec.clone(),
            depth: self.depth,
            analysis: self.analysis,
            max_runs,
            certificate: self.certificate,
        }
    }
}

/// Re-check a certificate against the adversary a [`Query`] denotes,
/// without expanding any prefix space — the offline trust anchor behind
/// `consensus-lab verify-cert` and the `/v1/check` `"certificate"` flag.
///
/// # Errors
/// Returns the typed [`CertError`] explaining the rejection;
/// [`CertError::Adversary`] when the query's spec itself cannot be built.
pub fn verify_certificate(cert: &Certificate, query: &Query) -> Result<(), CertError> {
    let ma = query.spec.build().map_err(|e| CertError::Adversary { reason: e.to_string() })?;
    consensus_core::certificate::verify(cert, ma.as_ref())
}

/// Build the adversary a certificate's `adversary` label denotes: a bare
/// catalog name, or a term of the shared spec language.
///
/// # Errors
/// Returns [`CertError::Adversary`] if the label is neither.
pub fn certificate_adversary(label: &str) -> Result<adversary::DynMA, CertError> {
    let spec = if adversary::catalog::by_name(label).is_some() {
        AdversarySpec::catalog(label)
    } else {
        AdversarySpec::parse(label).map_err(|e| CertError::Adversary { reason: e.to_string() })?
    };
    spec.build().map_err(|e| CertError::Adversary { reason: e.to_string() })
}

/// The batch-first facade over the expansion engine, caches, and sweep
/// machinery; see the module docs.
#[derive(Debug)]
pub struct Session {
    expand: ExpandConfig,
    analysis: AnalysisConfig,
    cache_cfg: CacheConfig,
    /// Scenario-level worker threads (`0` = available parallelism).
    workers: usize,
    time_limit: Option<Duration>,
    spaces: SpaceCache,
    disk: Option<DiskCache>,
}

// The `consensus-serve` HTTP server shares one `Session` across its worker
// threads behind an `Arc`, calling `check`/`check_many` through `&self`
// concurrently. Guard that contract at compile time: losing `Send + Sync`
// (say, by an `Rc` or `RefCell` slipping into the cache layer) must fail
// the build here, not at the server's use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>()
};

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session with all-default configs: serial expansion, 2·10⁶-run
    /// budget, weak validity, in-memory memoization, no persistence.
    pub fn new() -> Self {
        Self::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            CacheConfig::default(),
        )
        .expect("no disk dir configured, so opening cannot fail")
    }

    /// A session from explicit configs. Opens the persistent verdict
    /// journal when [`CacheConfig::disk_dir`] is set.
    ///
    /// # Errors
    /// Returns [`Error::Io`] if the cache directory cannot be opened.
    pub fn with_configs(
        expand: ExpandConfig,
        analysis: AnalysisConfig,
        cache: CacheConfig,
    ) -> Result<Self, Error> {
        let disk = DiskCache::from_config(&cache)?;
        Ok(Session {
            spaces: SpaceCache::with_config(&expand),
            expand,
            analysis,
            cache_cfg: cache,
            workers: 0,
            time_limit: None,
            disk,
        })
    }

    /// Set the scenario-level worker-thread count (`0` = available
    /// parallelism, the default).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the soft per-scenario wall-clock limit (exceeding it flags the
    /// record; step budgets, not preemption, bound the actual work).
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// The expansion configuration in effect.
    pub fn expand_config(&self) -> &ExpandConfig {
        &self.expand
    }

    /// The analysis configuration in effect.
    pub fn analysis_config(&self) -> &AnalysisConfig {
        &self.analysis
    }

    /// The cache configuration in effect.
    pub fn cache_config(&self) -> &CacheConfig {
        &self.cache_cfg
    }

    /// The session's shared in-memory space cache (live counters
    /// included). Under [`CacheConfig::memory`]` = false` batches run on
    /// private per-batch caches instead, so this handle's counters stay
    /// at zero — read the per-batch [`SweepReport::cache`] stats there.
    pub fn space_cache(&self) -> &SpaceCache {
        &self.spaces
    }

    /// The session's persistent verdict cache, when configured.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Answer one query.
    ///
    /// Routed through the same sweep machinery as [`check_many`]
    /// (a batch of one), so warm caches and journals behave identically.
    ///
    /// # Errors
    /// * [`Error::Spec`] if the query's adversary spec is unbuildable;
    /// * [`Error::Budget`] if the expansion exceeded
    ///   [`ExpandConfig::max_runs`].
    ///
    /// Budget-*contingent* solvability verdicts (an `undecided` whose
    /// sweep was cut short) are not errors: the record carries the
    /// evidence and its `budget_hit` flag.
    ///
    /// [`check_many`]: Self::check_many
    pub fn check(&self, query: &Query) -> Result<QueryResult, Error> {
        let report = self.check_many(std::slice::from_ref(query));
        let record = report.store.into_records().pop().expect("one query in, one record out");
        if record.outcome.verdict == "error" {
            // Re-derive the typed spec error (the record only carries its
            // message); spec construction is cheap and this is the cold
            // path — the happy path builds the adversary exactly once.
            query.spec.build()?;
        }
        if record.outcome.verdict == "budget-exceeded" {
            // `needed_runs` is part of the outcome's stable JSONL contract;
            // if a future outcome shape drops it, still honor the
            // `needed > max_runs` invariant rather than reporting 0.
            let needed = record
                .outcome
                .details
                .iter()
                .find(|(k, _)| k == "needed_runs")
                .and_then(|(_, v)| v.as_i64())
                .map(|n| n as usize)
                .unwrap_or_else(|| self.expand.max_runs.saturating_add(1));
            return Err(Error::Budget(BudgetExceeded { max_runs: self.expand.max_runs, needed }));
        }
        Ok(record)
    }

    /// Answer a batch of queries in parallel; records come back in query
    /// order regardless of scheduling, with full engine telemetry.
    pub fn check_many(&self, queries: &[Query]) -> SweepReport {
        self.run_scenarios(
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| (i, q.to_scenario(self.expand.max_runs)))
                .collect(),
        )
    }

    /// [`check_many`](Self::check_many) over explicitly indexed queries —
    /// the shard/resume entry point: each `(index, query)` pair carries its
    /// *global grid index*, so partial batches (a shard of a grid, or a
    /// resumed remainder) produce records that merge back byte-stably.
    pub fn check_many_indexed(&self, entries: &[(usize, Query)]) -> SweepReport {
        self.run_scenarios(
            entries.iter().map(|(i, q)| (*i, q.to_scenario(self.expand.max_runs))).collect(),
        )
    }

    fn run_scenarios(&self, scenarios: Vec<(usize, Scenario)>) -> SweepReport {
        let mut span = consensus_obs::trace::tracer()
            .span("sweep")
            .with_attr("scenarios", scenarios.len());
        let mut runner = SweepRunner { analysis: self.analysis, ..SweepRunner::new() };
        if self.workers > 0 {
            runner = runner.workers(self.workers);
        }
        if let Some(limit) = self.time_limit {
            runner = runner.time_limit(limit);
        }
        runner.consult_disk = self.cache_cfg.resume;
        // `memory: false` gives each batch a cold private cache instead of
        // the session-lived one (within a batch, sharing is inherent to
        // the sweep machinery — that is the point of a batch).
        let fresh;
        let spaces = if self.cache_cfg.memory {
            &self.spaces
        } else {
            fresh = SpaceCache::with_config(&self.expand);
            &fresh
        };
        let report = runner.run_indexed(&scenarios, spaces, self.disk.as_ref());
        span.set_attr("builds", report.cache.builds);
        span.set_attr("cache_hits", report.cache.hits);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TIMING_FIELDS;

    fn strip(report: &SweepReport) -> Vec<String> {
        report
            .store
            .records()
            .iter()
            .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
            .collect()
    }

    #[test]
    fn single_check_matches_batch_record() {
        let session = Session::new();
        let query = Query::catalog("sw-lossy-link", 2, AnalysisKind::Bivalence);
        let single = session.check(&query).unwrap();
        let batch = session.check_many(std::slice::from_ref(&query));
        assert_eq!(
            single.to_json().without_keys(TIMING_FIELDS),
            batch.store.records()[0].to_json().without_keys(TIMING_FIELDS)
        );
    }

    #[test]
    fn concurrent_checks_on_one_session_match_serial() {
        // The serving contract: worker threads hammering one shared
        // `Session` through `&self` — racing on cold cache slots included —
        // must answer every query exactly as a serial session does.
        let queries = Query::catalog_grid(2, &AnalysisKind::ALL);
        let serial_session = Session::new();
        let serial: Vec<String> = queries
            .iter()
            .map(|q| {
                let record = serial_session.check(q).unwrap();
                record.to_json().without_keys(TIMING_FIELDS).to_string()
            })
            .collect();
        let shared = Session::new();
        std::thread::scope(|scope| {
            for offset in 0..4usize {
                let (shared, queries, serial) = (&shared, &queries, &serial);
                scope.spawn(move || {
                    // Each worker walks the whole grid from its own offset,
                    // so cold cells are contended from the start.
                    for k in 0..queries.len() {
                        let i = (offset + k) % queries.len();
                        let record = shared.check(&queries[i]).unwrap();
                        assert_eq!(
                            record.to_json().without_keys(TIMING_FIELDS).to_string(),
                            serial[i],
                            "{}",
                            queries[i].label()
                        );
                    }
                });
            }
        });
        // All four workers were answered from one shared cache: the space
        // census matches the serial session's, not four times it.
        assert_eq!(shared.space_cache().len(), serial_session.space_cache().len());
    }

    #[test]
    fn spec_and_budget_errors_are_typed() {
        let session = Session::new();
        let bad = Query::catalog("no-such-entry", 2, AnalysisKind::Solvability);
        assert!(matches!(session.check(&bad).unwrap_err(), Error::Spec(_)));

        let tiny = Session::with_configs(
            ExpandConfig::with_budget(10),
            AnalysisConfig::default(),
            CacheConfig::default(),
        )
        .unwrap();
        let starved = Query::catalog("sw-lossy-link", 4, AnalysisKind::ComponentStats);
        match tiny.check(&starved).unwrap_err() {
            Error::Budget(b) => {
                assert_eq!(b.max_runs, 10);
                assert!(b.needed > 10);
            }
            other => panic!("expected budget error, got {other}"),
        }
    }

    #[test]
    fn query_grid_matches_scenario_grid_order() {
        let queries = Query::catalog_grid(2, &[AnalysisKind::Solvability, AnalysisKind::SimCheck]);
        let scenarios = GridBuilder::new(2, 123)
            .analyses(&[AnalysisKind::Solvability, AnalysisKind::SimCheck])
            .over_catalog();
        assert_eq!(queries.len(), scenarios.len());
        for (q, s) in queries.iter().zip(&scenarios) {
            assert_eq!((&q.spec, q.depth, q.analysis), (&s.spec, s.depth, s.analysis));
            assert_eq!(q.label(), s.label());
        }
    }

    #[test]
    fn session_cache_is_warm_across_batches() {
        let session = Session::new();
        let queries = Query::catalog_grid(2, &[AnalysisKind::ComponentStats]);
        let cold = session.check_many(&queries);
        assert!(cold.cache.builds > 0);
        let builds_after_cold = session.space_cache().stats().builds;
        session.check_many(&queries);
        assert_eq!(
            session.space_cache().stats().builds,
            builds_after_cold,
            "second batch must be answered from the session cache"
        );
    }

    #[test]
    fn memoryless_sessions_start_every_batch_cold() {
        let session = Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            CacheConfig::new().memory(false),
        )
        .unwrap();
        let queries = vec![Query::catalog("sw-lossy-link", 2, AnalysisKind::ComponentStats)];
        let a = session.check_many(&queries);
        let b = session.check_many(&queries);
        assert_eq!(a.cache.builds, b.cache.builds, "no sharing across batches");
        assert!(b.cache.builds > 0);
        // Records are still identical — caching is transparent.
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn strong_validity_config_reaches_sweeps() {
        // all-to-all n=2: solvable under both flavors, but the configured
        // session must actually run the strong checker (same verdict here;
        // the flavor is observable on ternary domains via core tests).
        let weak = Session::new();
        let strong = Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::new().strong_validity(true),
            CacheConfig::default(),
        )
        .unwrap();
        let q = Query::catalog("cgp-reduced-lossy-link", 3, AnalysisKind::Solvability);
        assert_eq!(weak.check(&q).unwrap().outcome.verdict, "solvable");
        assert_eq!(strong.check(&q).unwrap().outcome.verdict, "solvable");
    }

    #[test]
    fn differently_configured_sessions_do_not_share_journal_entries() {
        // The journal is keyed on the analysis-params code, so a session
        // whose AnalysisConfig changes solvability answers (strong
        // validity, chain-cycle bound) must recompute rather than be
        // answered by a default session's journaled verdicts.
        let dir = std::env::temp_dir()
            .join(format!("consensus-lab-session-params-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let queries = Query::catalog_grid(2, &[AnalysisKind::Solvability]);
        let weak = Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            CacheConfig::new().disk_dir(&dir),
        )
        .unwrap();
        weak.check_many(&queries);
        drop(weak);
        let strong = Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::new().strong_validity(true),
            CacheConfig::new().disk_dir(&dir),
        )
        .unwrap();
        let report = strong.check_many(&queries);
        // Intra-session hits between structurally aliased catalog entries
        // are fine (same fingerprint, same params); what must NOT happen
        // is a fully warm pass off the weak session's journal — the
        // strong session has to expand spaces for its own verdicts.
        assert!(
            report.cache.builds > 0,
            "a strong-validity session must recompute, not consume weak-validity verdicts: {:?}",
            report.cache
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_session_resumes_across_instances() {
        let dir =
            std::env::temp_dir().join(format!("consensus-lab-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let queries = Query::catalog_grid(2, &[AnalysisKind::Bivalence]);
        let cfg = CacheConfig::new().disk_dir(&dir);
        let cold =
            Session::with_configs(ExpandConfig::default(), AnalysisConfig::default(), cfg.clone())
                .unwrap();
        let first = cold.check_many(&queries);
        assert!(first.cache.builds > 0);
        // A second session (≈ a second process) answers from the journal:
        // zero expansions.
        let warm =
            Session::with_configs(ExpandConfig::default(), AnalysisConfig::default(), cfg.clone())
                .unwrap();
        let second = warm.check_many(&queries);
        assert_eq!(second.cache.builds, 0, "warm session must not expand");
        assert!(second.cache.disk_hits > 0);
        assert_eq!(strip(&first), strip(&second));
        // resume=false must recompute despite the journal.
        let no_resume = Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            cfg.resume(false),
        )
        .unwrap();
        let third = no_resume.check_many(&queries);
        assert!(third.cache.builds > 0, "resume=false must not consult the journal");
        assert_eq!(strip(&first), strip(&third));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
