//! Aggregation over stored result files (the `report` CLI subcommand),
//! plus the sweep-metadata sidecar that carries engine telemetry — cache
//! counters in particular — alongside the per-record JSONL.

use std::collections::BTreeMap;
use std::fmt;

use crate::cache::{CacheStats, ExpandTotals};
use crate::json::Value;

/// File name of the engine-telemetry sidecar a sweep writes next to
/// `results.jsonl`.
pub const SWEEP_META_FILE: &str = "sweep-meta.json";

/// Engine telemetry of one sweep (or the sum over merged shards): what the
/// records themselves cannot carry — how the cache hierarchy performed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepMeta {
    /// Scenario records in the accompanying results file (a warm or
    /// resumed run reports the full set, not just what it re-executed).
    pub scenarios: usize,
    /// Worker threads used (maximum over merged shards).
    pub threads: usize,
    /// Space/disk cache counters accumulated over the sweep.
    pub cache: CacheStats,
    /// Expansion-engine telemetry: shard counts, merge time, arena bytes.
    pub expand: ExpandTotals,
}

impl SweepMeta {
    /// The order-stable JSON form written to [`SWEEP_META_FILE`].
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("scenarios".into(), Value::Int(self.scenarios as i64)),
            ("threads".into(), Value::Int(self.threads as i64)),
            (
                "cache".into(),
                Value::Obj(vec![
                    ("builds".into(), Value::Int(self.cache.builds as i64)),
                    ("hits".into(), Value::Int(self.cache.hits as i64)),
                    ("ladder_hits".into(), Value::Int(self.cache.ladder_hits as i64)),
                    ("disk_hits".into(), Value::Int(self.cache.disk_hits as i64)),
                    ("budget_misses".into(), Value::Int(self.cache.budget_misses as i64)),
                ]),
            ),
            (
                "expand".into(),
                Value::Obj(vec![
                    ("passes".into(), Value::Int(self.expand.passes as i64)),
                    ("shards".into(), Value::Int(self.expand.shards as i64)),
                    ("merge_ms".into(), Value::Float(self.expand.merge_ms)),
                    ("arena_bytes_peak".into(), Value::Int(self.expand.arena_bytes_peak as i64)),
                ]),
            ),
        ])
    }

    /// Parse the JSON form back; `None` if any field is missing/ill-typed.
    /// The `expand` block is optional (sidecars written before it existed
    /// parse to zeroed telemetry).
    pub fn from_json(v: &Value) -> Option<SweepMeta> {
        let cache = v.get("cache")?;
        let expand = match v.get("expand") {
            Some(e) => ExpandTotals {
                passes: e.get_usize("passes")?,
                shards: e.get_usize("shards")?,
                merge_ms: match e.get("merge_ms") {
                    Some(Value::Float(ms)) => *ms,
                    Some(Value::Int(ms)) => *ms as f64,
                    _ => return None,
                },
                arena_bytes_peak: e.get_usize("arena_bytes_peak")?,
            },
            None => ExpandTotals::default(),
        };
        Some(SweepMeta {
            scenarios: v.get_usize("scenarios")?,
            threads: v.get_usize("threads")?,
            cache: CacheStats {
                builds: cache.get_usize("builds")?,
                hits: cache.get_usize("hits")?,
                ladder_hits: cache.get_usize("ladder_hits")?,
                disk_hits: cache.get_usize("disk_hits")?,
                budget_misses: cache.get_usize("budget_misses")?,
            },
            expand,
        })
    }

    /// Combine shard sidecars: counters sum, thread counts and arena peaks
    /// take the max.
    pub fn merged(metas: &[SweepMeta]) -> SweepMeta {
        let mut out = SweepMeta::default();
        for m in metas {
            out.scenarios += m.scenarios;
            out.threads = out.threads.max(m.threads);
            out.cache.builds += m.cache.builds;
            out.cache.hits += m.cache.hits;
            out.cache.ladder_hits += m.cache.ladder_hits;
            out.cache.disk_hits += m.cache.disk_hits;
            out.cache.budget_misses += m.cache.budget_misses;
            out.expand.passes += m.expand.passes;
            out.expand.shards += m.expand.shards;
            out.expand.merge_ms += m.expand.merge_ms;
            out.expand.arena_bytes_peak =
                out.expand.arena_bytes_peak.max(m.expand.arena_bytes_peak);
        }
        out
    }
}

impl fmt::Display for SweepMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine: {} scenarios on {} threads; space cache: {} builds, {} hits, \
             {} ladder extensions, {} budget misses; disk cache: {} hits",
            self.scenarios,
            self.threads,
            self.cache.builds,
            self.cache.hits,
            self.cache.ladder_hits,
            self.cache.budget_misses,
            self.cache.disk_hits,
        )?;
        if self.expand.passes > 0 {
            write!(
                f,
                "; expansion engine: {} passes in {} shards, {:.2} ms merging, \
                 peak arena {} bytes",
                self.expand.passes,
                self.expand.shards,
                self.expand.merge_ms,
                self.expand.arena_bytes_peak,
            )?;
        }
        Ok(())
    }
}

/// Aggregated view of a JSONL result file.
#[derive(Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Records counted.
    pub records: usize,
    /// `(analysis, verdict) → count`.
    pub by_analysis: BTreeMap<(String, String), usize>,
    /// Records flagged `matches_expected: false`.
    pub mismatches: Vec<String>,
    /// Total wall-clock milliseconds across records.
    pub total_wall_ms: f64,
    /// Records served from the space cache (`cached_space: true`).
    pub cached: usize,
    /// Records with a `cached_space` field at all.
    pub cacheable: usize,
    /// Records with `budget_hit: true`.
    pub budget_hits: usize,
}

impl Aggregate {
    /// Aggregate parsed JSONL records.
    pub fn from_records(records: &[Value]) -> Self {
        let mut agg = Aggregate::default();
        for r in records {
            agg.records += 1;
            let analysis = r.get("analysis").and_then(Value::as_str).unwrap_or("?").to_string();
            let verdict = r.get("verdict").and_then(Value::as_str).unwrap_or("?").to_string();
            *agg.by_analysis.entry((analysis, verdict)).or_insert(0) += 1;
            if r.get("matches_expected").and_then(Value::as_bool) == Some(false) {
                let label = format!(
                    "{}@{}",
                    r.get("adversary").and_then(Value::as_str).unwrap_or("?"),
                    r.get("depth").and_then(Value::as_i64).unwrap_or(-1),
                );
                agg.mismatches.push(label);
            }
            if let Some(Value::Float(wall)) = r.get("wall_ms") {
                agg.total_wall_ms += wall;
            } else if let Some(Value::Int(wall)) = r.get("wall_ms") {
                agg.total_wall_ms += *wall as f64;
            }
            if let Some(cached) = r.get("cached_space").and_then(Value::as_bool) {
                agg.cacheable += 1;
                if cached {
                    agg.cached += 1;
                }
            }
            if r.get("budget_hit").and_then(Value::as_bool) == Some(true) {
                agg.budget_hits += 1;
            }
        }
        agg
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} records, {:.1} ms total compute, {} budget hits, cache {}/{}",
            self.records, self.total_wall_ms, self.budget_hits, self.cached, self.cacheable
        )?;
        let mut current = "";
        for ((analysis, verdict), count) in &self.by_analysis {
            if analysis != current {
                writeln!(f, "  {analysis}:")?;
                current = analysis;
            }
            writeln!(f, "    {verdict:<18} {count}")?;
        }
        if self.mismatches.is_empty() {
            writeln!(f, "  ground truth: all solvability verdicts match the catalog")?;
        } else {
            writeln!(f, "  ground-truth MISMATCHES: {}", self.mismatches.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::parse_jsonl;

    const SAMPLE: &str = concat!(
        r#"{"adversary":"a","depth":1,"analysis":"solvability","verdict":"solvable","matches_expected":true,"budget_hit":false,"wall_ms":1.5}"#,
        "\n",
        r#"{"adversary":"b","depth":2,"analysis":"solvability","verdict":"undecided","matches_expected":false,"budget_hit":true,"wall_ms":2.0}"#,
        "\n",
        r#"{"adversary":"b","depth":2,"analysis":"bivalence","verdict":"mixed","cached_space":true,"budget_hit":false,"wall_ms":0.5}"#,
        "\n",
    );

    #[test]
    fn sweep_meta_roundtrips_and_merges() {
        let a = SweepMeta {
            scenarios: 60,
            threads: 4,
            cache: CacheStats {
                hits: 40,
                builds: 5,
                ladder_hits: 10,
                disk_hits: 3,
                budget_misses: 2,
            },
            expand: ExpandTotals { passes: 15, shards: 60, merge_ms: 1.25, arena_bytes_peak: 4096 },
        };
        let back =
            SweepMeta::from_json(&crate::json::parse(&a.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, a);
        let b = SweepMeta { scenarios: 61, threads: 8, ..a };
        let merged = SweepMeta::merged(&[a, b]);
        assert_eq!(merged.scenarios, 121);
        assert_eq!(merged.threads, 8);
        assert_eq!(merged.cache.ladder_hits, 20);
        assert_eq!(merged.cache.disk_hits, 6);
        assert_eq!(merged.expand.passes, 30);
        assert_eq!(merged.expand.shards, 120);
        assert_eq!(merged.expand.arena_bytes_peak, 4096, "peaks take the max, not the sum");
        let text = a.to_string();
        assert!(text.contains("10 ladder extensions"));
        assert!(text.contains("2 budget misses"));
        assert!(text.contains("disk cache: 3 hits"));
        assert!(text.contains("15 passes in 60 shards"));
        assert!(SweepMeta::from_json(&Value::Null).is_none());
    }

    #[test]
    fn sweep_meta_without_expand_block_parses_to_zeroes() {
        // Sidecars written before the expansion telemetry existed stay
        // readable.
        let text = r#"{"scenarios":3,"threads":2,"cache":{"builds":1,"hits":2,"ladder_hits":0,"disk_hits":0,"budget_misses":0}}"#;
        let meta = SweepMeta::from_json(&crate::json::parse(text).unwrap()).unwrap();
        assert_eq!(meta.scenarios, 3);
        assert_eq!(meta.expand, ExpandTotals::default());
        assert!(!meta.to_string().contains("expansion engine"));
    }

    #[test]
    fn aggregates_counts_and_mismatches() {
        let records = parse_jsonl(SAMPLE).unwrap();
        let agg = Aggregate::from_records(&records);
        assert_eq!(agg.records, 3);
        assert_eq!(agg.by_analysis[&("solvability".to_string(), "solvable".to_string())], 1);
        assert_eq!(agg.mismatches, vec!["b@2".to_string()]);
        assert_eq!(agg.budget_hits, 1);
        assert_eq!((agg.cached, agg.cacheable), (1, 1));
        assert!((agg.total_wall_ms - 4.0).abs() < 1e-9);
        let text = agg.to_string();
        assert!(text.contains("MISMATCHES: b@2"));
    }
}
