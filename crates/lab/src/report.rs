//! Aggregation over stored result files (the `report` CLI subcommand).

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Value;

/// Aggregated view of a JSONL result file.
#[derive(Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Records counted.
    pub records: usize,
    /// `(analysis, verdict) → count`.
    pub by_analysis: BTreeMap<(String, String), usize>,
    /// Records flagged `matches_expected: false`.
    pub mismatches: Vec<String>,
    /// Total wall-clock milliseconds across records.
    pub total_wall_ms: f64,
    /// Records served from the space cache (`cached_space: true`).
    pub cached: usize,
    /// Records with a `cached_space` field at all.
    pub cacheable: usize,
    /// Records with `budget_hit: true`.
    pub budget_hits: usize,
}

impl Aggregate {
    /// Aggregate parsed JSONL records.
    pub fn from_records(records: &[Value]) -> Self {
        let mut agg = Aggregate::default();
        for r in records {
            agg.records += 1;
            let analysis = r.get("analysis").and_then(Value::as_str).unwrap_or("?").to_string();
            let verdict = r.get("verdict").and_then(Value::as_str).unwrap_or("?").to_string();
            *agg.by_analysis.entry((analysis, verdict)).or_insert(0) += 1;
            if r.get("matches_expected").and_then(Value::as_bool) == Some(false) {
                let label = format!(
                    "{}@{}",
                    r.get("adversary").and_then(Value::as_str).unwrap_or("?"),
                    r.get("depth").and_then(Value::as_i64).unwrap_or(-1),
                );
                agg.mismatches.push(label);
            }
            if let Some(Value::Float(wall)) = r.get("wall_ms") {
                agg.total_wall_ms += wall;
            } else if let Some(Value::Int(wall)) = r.get("wall_ms") {
                agg.total_wall_ms += *wall as f64;
            }
            if let Some(cached) = r.get("cached_space").and_then(Value::as_bool) {
                agg.cacheable += 1;
                if cached {
                    agg.cached += 1;
                }
            }
            if r.get("budget_hit").and_then(Value::as_bool) == Some(true) {
                agg.budget_hits += 1;
            }
        }
        agg
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} records, {:.1} ms total compute, {} budget hits, cache {}/{}",
            self.records, self.total_wall_ms, self.budget_hits, self.cached, self.cacheable
        )?;
        let mut current = "";
        for ((analysis, verdict), count) in &self.by_analysis {
            if analysis != current {
                writeln!(f, "  {analysis}:")?;
                current = analysis;
            }
            writeln!(f, "    {verdict:<18} {count}")?;
        }
        if self.mismatches.is_empty() {
            writeln!(f, "  ground truth: all solvability verdicts match the catalog")?;
        } else {
            writeln!(f, "  ground-truth MISMATCHES: {}", self.mismatches.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::parse_jsonl;

    const SAMPLE: &str = concat!(
        r#"{"adversary":"a","depth":1,"analysis":"solvability","verdict":"solvable","matches_expected":true,"budget_hit":false,"wall_ms":1.5}"#,
        "\n",
        r#"{"adversary":"b","depth":2,"analysis":"solvability","verdict":"undecided","matches_expected":false,"budget_hit":true,"wall_ms":2.0}"#,
        "\n",
        r#"{"adversary":"b","depth":2,"analysis":"bivalence","verdict":"mixed","cached_space":true,"budget_hit":false,"wall_ms":0.5}"#,
        "\n",
    );

    #[test]
    fn aggregates_counts_and_mismatches() {
        let records = parse_jsonl(SAMPLE).unwrap();
        let agg = Aggregate::from_records(&records);
        assert_eq!(agg.records, 3);
        assert_eq!(agg.by_analysis[&("solvability".to_string(), "solvable".to_string())], 1);
        assert_eq!(agg.mismatches, vec!["b@2".to_string()]);
        assert_eq!(agg.budget_hits, 1);
        assert_eq!((agg.cached, agg.cacheable), (1, 1));
        assert!((agg.total_wall_ms - 4.0).abs() < 1e-9);
        let text = agg.to_string();
        assert!(text.contains("MISMATCHES: b@2"));
    }
}
