//! Scenarios — the unit of sweep traffic.
//!
//! A [`Scenario`] is *(adversary spec, depth, analysis kind)* plus budgets:
//! exactly one question the paper's machinery can answer about one
//! adversary at one resolution. Grids of scenarios (a catalog × depths ×
//! analyses product) are what the [`runner`](crate::runner) fans out.

use std::fmt;

use adversary::{catalog, spec::SpecTerm, DynMA, GeneralMA};
use consensus_core::error::{Error, SpecError};
use dyngraph::Digraph;

/// Which analysis to run on the scenario's `(adversary, depth)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnalysisKind {
    /// The three-valued solvability checker (§5.1 meta-procedure; sweeps
    /// depths `0..=depth` internally).
    Solvability,
    /// Mixed-component census and valence-connecting ε-chain extraction at
    /// the scenario depth (the §6.1 bivalence reconstruction).
    Bivalence,
    /// Broadcastability of every component (Theorem 5.11 / 6.6).
    Broadcastability,
    /// Component statistics: sizes, valences, class distances (Fig. 4/5).
    ComponentStats,
    /// Simulator cross-check: synthesize the universal algorithm if the
    /// space separates and verify it exhaustively; otherwise exhibit a
    /// reference-algorithm violation.
    SimCheck,
}

impl AnalysisKind {
    /// All kinds, in stable grid order.
    pub const ALL: [AnalysisKind; 5] = [
        AnalysisKind::Solvability,
        AnalysisKind::Bivalence,
        AnalysisKind::Broadcastability,
        AnalysisKind::ComponentStats,
        AnalysisKind::SimCheck,
    ];

    /// The stable machine name (CLI and result-store key).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Solvability => "solvability",
            AnalysisKind::Bivalence => "bivalence",
            AnalysisKind::Broadcastability => "broadcastability",
            AnalysisKind::ComponentStats => "component-stats",
            AnalysisKind::SimCheck => "sim-check",
        }
    }

    /// The valid machine names, in stable grid order.
    pub const NAMES: [&'static str; 5] =
        ["solvability", "bivalence", "broadcastability", "component-stats", "sim-check"];

    /// Parse a machine name.
    ///
    /// # Errors
    /// Returns [`Error::UnknownAnalysis`] naming the valid set.
    pub fn parse(name: &str) -> Result<Self, Error> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| Error::UnknownAnalysis { name: name.to_string(), valid: &Self::NAMES })
    }
}

impl fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the scenario's adversary is obtained.
///
/// Since the spec-language redesign this is a thin wrapper around
/// [`SpecTerm`]: construct via [`AdversarySpec::parse`] (the shared string
/// language used by the CLI's `--spec`, the HTTP API's `"spec"` field, and
/// `/v1/catalog`'s canonical strings), or [`AdversarySpec::catalog`] /
/// [`AdversarySpec::pool`] for the two historical shapes. The `Catalog` and
/// `Pool` enum variants survive as deprecated shims for pre-redesign
/// callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// A named entry of [`adversary::catalog::entries`].
    #[deprecated(
        since = "0.2.0",
        note = "use AdversarySpec::parse or AdversarySpec::catalog"
    )]
    Catalog(String),
    /// An oblivious `n = 2` adversary over parsed arrow tokens
    /// (`"-> <- <->"`), optionally with an eventually-occurs liveness.
    #[deprecated(
        since = "0.2.0",
        note = "use AdversarySpec::parse or AdversarySpec::pool"
    )]
    Pool {
        /// Whitespace-separated 2-process graph tokens.
        word: String,
        /// Liveness: `Some((target_token, deadline))` for "`target` occurs
        /// (within `deadline`)".
        eventually: Option<(String, Option<usize>)>,
    },
    /// A term of the compositional spec language ([`adversary::spec`]).
    Term(SpecTerm),
}

impl AdversarySpec {
    /// Parse a spec string (`"catalog(sw-lossy-link)"`,
    /// `"union(pool(->), eventually(<->))"`, …) into its canonical term.
    ///
    /// # Errors
    /// Returns [`Error::Spec`] with [`SpecError::Parse`] locating the
    /// first malformed byte.
    pub fn parse(input: &str) -> Result<Self, Error> {
        Ok(AdversarySpec::Term(SpecTerm::parse(input)?))
    }

    /// The spec selecting catalog entry `name` (checked at
    /// [`build`](Self::build) time, like every other term).
    pub fn catalog(name: impl Into<String>) -> Self {
        AdversarySpec::Term(SpecTerm::Catalog(name.into()))
    }

    /// The historical pool shape as a term: an oblivious adversary over
    /// whitespace-separated arrow tokens, optionally with an
    /// eventually-occurs liveness — the lowering shared by the CLI's
    /// `--pool/--eventually/--by` flags and the HTTP API's compat aliases.
    ///
    /// One **intentional tightening** over the deprecated
    /// [`AdversarySpec::Pool`] variant: a liveness target absent from the
    /// pool is rejected at [`build`](Self::build) time (the shared
    /// `eventually(pool, target)` rule), where the legacy variant silently
    /// produced a *vacuous* adversary admitting no sequence at all, so its
    /// verdicts were degenerate. Alias callers hitting this edge now get a
    /// typed [`Error::Spec`] (HTTP 400) instead of a misleading answer.
    ///
    /// # Errors
    /// Returns [`Error::Spec`] for unparsable tokens or an empty word
    /// (the legacy `BadGraph`/`EmptyPool` shapes).
    pub fn pool(word: &str, eventually: Option<(&str, Option<usize>)>) -> Result<Self, Error> {
        let pool = parse_pool(word)?;
        let term = match eventually {
            None => SpecTerm::Pool(pool),
            Some((target, by)) => SpecTerm::Eventually { pool, target: parse_graph(target)?, by },
        };
        Ok(AdversarySpec::Term(term.normalize()))
    }

    /// The spec as a term of the shared language (legacy variants lower on
    /// the fly).
    ///
    /// # Errors
    /// Returns [`Error::Spec`] when a legacy `Pool` variant's tokens do not
    /// parse.
    #[allow(deprecated)]
    pub fn term(&self) -> Result<SpecTerm, Error> {
        match self {
            AdversarySpec::Catalog(name) => Ok(SpecTerm::Catalog(name.clone())),
            AdversarySpec::Pool { word, eventually } => {
                let pool = parse_pool(word)?;
                Ok(match eventually {
                    None => SpecTerm::Pool(pool),
                    Some((target, by)) => {
                        SpecTerm::Eventually { pool, target: parse_graph(target)?, by: *by }
                    }
                }
                .normalize())
            }
            AdversarySpec::Term(term) => Ok(term.clone()),
        }
    }

    /// Construct the adversary.
    ///
    /// # Errors
    /// Returns [`Error::Spec`] for unknown catalog names, unparsable
    /// pools, and terms that lower to no valid adversary.
    #[allow(deprecated)]
    pub fn build(&self) -> Result<DynMA, Error> {
        match self {
            // The legacy Pool path keeps its historical semantics (the
            // liveness target is not required to sit in the pool).
            AdversarySpec::Pool { word, eventually } => {
                let pool = parse_pool(word)?;
                match eventually {
                    None => Ok(Box::new(GeneralMA::oblivious(pool))),
                    Some((target, deadline)) => {
                        let target = parse_graph(target)?;
                        Ok(Box::new(GeneralMA::eventually_graph(pool, target, *deadline)))
                    }
                }
            }
            _ => Ok(self.term()?.lower()?),
        }
    }

    /// The display label used in result records: the catalog name for
    /// catalog specs (so sweep resume and report grouping stay stable),
    /// otherwise the canonical spec string. Legacy variants keep their
    /// historical labels.
    #[allow(deprecated)]
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::Catalog(name) => name.clone(),
            AdversarySpec::Pool { word, eventually: None } => format!("pool({word})"),
            AdversarySpec::Pool { word, eventually: Some((t, None)) } => {
                format!("pool({word}) ◇{t}")
            }
            AdversarySpec::Pool { word, eventually: Some((t, Some(r))) } => {
                format!("pool({word}) {t} by {r}")
            }
            AdversarySpec::Term(SpecTerm::Catalog(name)) => name.clone(),
            AdversarySpec::Term(term) => term.to_string(),
        }
    }

    /// The ground-truth checker outcome, where known (catalog entries only).
    #[allow(deprecated)]
    pub fn expected(&self) -> Option<catalog::ExpectedOutcome> {
        match self {
            AdversarySpec::Catalog(name) | AdversarySpec::Term(SpecTerm::Catalog(name)) => {
                catalog::by_name(name).map(|e| e.expected)
            }
            _ => None,
        }
    }
}

fn parse_graph(token: &str) -> Result<Digraph, Error> {
    Digraph::parse2(token).map_err(|e| {
        Error::Spec(SpecError::BadGraph { token: token.to_string(), reason: e.to_string() })
    })
}

fn parse_pool(word: &str) -> Result<Vec<Digraph>, Error> {
    let graphs: Result<Vec<Digraph>, Error> = word.split_whitespace().map(parse_graph).collect();
    let graphs = graphs?;
    if graphs.is_empty() {
        return Err(Error::Spec(SpecError::EmptyPool));
    }
    Ok(graphs)
}

/// One unit of sweep traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The adversary.
    pub spec: AdversarySpec,
    /// The resolution depth `t` (`ε = 2^{−t}`).
    pub depth: usize,
    /// The analysis to run.
    pub analysis: AnalysisKind,
    /// Step budget: maximum admissible runs per expansion.
    pub max_runs: usize,
    /// Attach the checkable certificate to the record's JSON when the
    /// verdict is definitive (see [`crate::session::Query::with_certificate`]).
    pub certificate: bool,
}

impl Scenario {
    /// A human-readable one-liner.
    pub fn label(&self) -> String {
        format!("{}@{}/{}", self.spec.label(), self.depth, self.analysis)
    }
}

/// A deterministic `i/n` partition of the scenario grid, so one sweep fans
/// out across CI jobs or machines. Assignment is round-robin on the global
/// grid index (`index % count == shard.index`), which balances depths and
/// analyses across shards; the selected entries keep their global indices,
/// so shard outputs merge back into the unsharded report exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards, ≥ 1.
    pub count: usize,
}

impl Shard {
    /// Parse the CLI form `"i/n"`.
    ///
    /// # Errors
    /// Returns [`Error::BadShard`] for malformed input, `n = 0`, and
    /// `i ≥ n`.
    pub fn parse(s: &str) -> Result<Shard, Error> {
        let bad = |reason: String| Error::BadShard { spec: s.to_string(), reason };
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| bad(format!("shard spec {s:?} is not of the form i/n")))?;
        let index: usize =
            i.trim().parse().map_err(|_| bad(format!("bad shard index in {s:?}")))?;
        let count: usize =
            n.trim().parse().map_err(|_| bad(format!("bad shard count in {s:?}")))?;
        if count == 0 {
            return Err(bad("shard count must be at least 1".to_string()));
        }
        if index >= count {
            return Err(bad(format!("shard index {index} out of range for {count} shards")));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns global grid index `index`.
    pub fn selects(&self, index: usize) -> bool {
        index % self.count == self.index
    }

    /// This shard's slice of an indexed grid.
    pub fn select<T: Clone>(&self, entries: &[(usize, T)]) -> Vec<(usize, T)> {
        entries.iter().filter(|(i, _)| self.selects(*i)).cloned().collect()
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Deterministic scenario grids.
#[derive(Debug, Clone)]
pub struct GridBuilder {
    depths: Vec<usize>,
    analyses: Vec<AnalysisKind>,
    max_runs: usize,
}

impl GridBuilder {
    /// Depths `1..=max_depth`, all analyses, the given step budget.
    pub fn new(max_depth: usize, max_runs: usize) -> Self {
        GridBuilder {
            depths: (1..=max_depth).collect(),
            analyses: AnalysisKind::ALL.to_vec(),
            max_runs,
        }
    }

    /// Restrict the analyses (grid order follows [`AnalysisKind::ALL`]).
    pub fn analyses(mut self, kinds: &[AnalysisKind]) -> Self {
        self.analyses = AnalysisKind::ALL.into_iter().filter(|k| kinds.contains(k)).collect();
        self
    }

    /// The grid over the whole built-in catalog, in catalog × depth ×
    /// analysis order.
    pub fn over_catalog(&self) -> Vec<Scenario> {
        let specs: Vec<AdversarySpec> =
            catalog::entries().iter().map(|e| AdversarySpec::catalog(e.name)).collect();
        self.over_specs(&specs)
    }

    /// The grid over explicit specs, in spec × depth × analysis order.
    pub fn over_specs(&self, specs: &[AdversarySpec]) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(specs.len() * self.depths.len() * self.analyses.len());
        for spec in specs {
            for &depth in &self.depths {
                for &analysis in &self.analyses {
                    out.push(Scenario {
                        spec: spec.clone(),
                        depth,
                        analysis,
                        max_runs: self.max_runs,
                        certificate: false,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_names_roundtrip() {
        for (kind, name) in AnalysisKind::ALL.into_iter().zip(AnalysisKind::NAMES) {
            assert_eq!(kind.name(), name);
            assert_eq!(AnalysisKind::parse(kind.name()).unwrap(), kind);
        }
        // The error names the valid set, so a typo is self-explaining.
        let err = AnalysisKind::parse("nope").unwrap_err();
        assert!(matches!(err, Error::UnknownAnalysis { .. }));
        assert!(err.to_string().contains("solvability, bivalence"), "{err}");
    }

    #[test]
    fn catalog_spec_builds() {
        let spec = AdversarySpec::catalog("sw-lossy-link");
        let ma = spec.build().unwrap();
        assert_eq!(ma.n(), 2);
        assert_eq!(spec.expected(), Some(None));
        assert_eq!(spec.label(), "sw-lossy-link");
        assert!(AdversarySpec::catalog("missing").build().is_err());
    }

    #[test]
    fn pool_spec_builds() {
        let spec = AdversarySpec::pool("-> <-", None).unwrap();
        let ma = spec.build().unwrap();
        assert!(ma.is_compact());
        assert_eq!(ma.pool_hint().unwrap().len(), 2);
        // The label is the canonical (sorted) spec string.
        assert_eq!(spec.label(), "pool(<- ->)");

        let live = AdversarySpec::pool("-> <- <->", Some(("<->", Some(2)))).unwrap();
        assert!(live.build().unwrap().is_compact());
        let nc = AdversarySpec::pool("-> <- <->", Some(("<->", None))).unwrap();
        assert!(!nc.build().unwrap().is_compact());
        assert_eq!(nc.label(), "eventually(<- -> <->, <->)");
    }

    #[test]
    fn parse_is_the_shared_front_door() {
        let spec = AdversarySpec::parse("union(pool(->), pool(<-))").unwrap();
        assert_eq!(spec.label(), "union(pool(->), pool(<-))");
        assert!(spec.build().unwrap().is_compact());
        // Spellings converge on the same term, hence the same label.
        assert_eq!(AdversarySpec::parse("union(pool(<-), pool( -> ))").unwrap(), spec);
        // Parse errors surface as typed spec errors with an offset.
        let err = AdversarySpec::parse("pool(").unwrap_err();
        assert!(matches!(err, Error::Spec(SpecError::Parse { .. })), "{err}");
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_variants_keep_their_behavior() {
        // Pre-redesign construction sites compile (with a warning) and
        // produce the historical labels and adversaries.
        let spec = AdversarySpec::Catalog("sw-lossy-link".to_string());
        assert_eq!(spec.label(), "sw-lossy-link");
        assert_eq!(spec.expected(), Some(None));
        let spec = AdversarySpec::Pool {
            word: "-> <- <->".to_string(),
            eventually: Some(("<->".to_string(), None)),
        };
        assert_eq!(spec.label(), "pool(-> <- <->) ◇<->");
        // ... and share fingerprints with the term path.
        let legacy = spec.build().unwrap();
        let term = AdversarySpec::parse("eventually(-> <- <->, <->)").unwrap().build().unwrap();
        assert_eq!(legacy.fingerprint(), term.fingerprint());
    }

    #[test]
    #[allow(deprecated)]
    fn pool_rejects_liveness_target_outside_the_pool() {
        // The documented tightening over the legacy Pool variant: the
        // shared lowering refuses a target the pool can never produce,
        // where the deprecated path built a vacuous adversary that admits
        // no sequence at all.
        let spec = AdversarySpec::pool("-> <-", Some(("<->", None))).unwrap();
        let err = match spec.build() {
            Err(e) => e,
            Ok(_) => panic!("a target outside the pool must not build"),
        };
        assert!(err.to_string().contains("not in the pool"), "{err}");
        use adversary::MessageAdversary;
        let legacy = AdversarySpec::Pool {
            word: "-> <-".to_string(),
            eventually: Some(("<->".to_string(), None)),
        };
        let ma = legacy.build().unwrap();
        assert!(ma.extensions(&dyngraph::GraphSeq::new()).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn bad_pool_rejected() {
        for word in ["", "xx", "-> zz"] {
            let spec = AdversarySpec::Pool { word: word.to_string(), eventually: None };
            assert!(spec.build().is_err(), "{word:?} should fail");
            assert!(AdversarySpec::pool(word, None).is_err(), "{word:?} should fail");
        }
    }

    #[test]
    fn grid_is_deterministic_and_ordered() {
        let grid = GridBuilder::new(3, 100_000).over_catalog();
        let again = GridBuilder::new(3, 100_000).over_catalog();
        assert_eq!(grid, again);
        let per_entry = 3 * AnalysisKind::ALL.len();
        assert_eq!(grid.len(), adversary::catalog::entries().len() * per_entry);
        // First block: first catalog entry, depth 1, analyses in ALL order.
        assert_eq!(grid[0].depth, 1);
        assert_eq!(grid[0].analysis, AnalysisKind::Solvability);
        assert_eq!(grid[1].analysis, AnalysisKind::Bivalence);
    }

    #[test]
    fn shard_parse_and_partition() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["", "1", "2/2", "3/2", "a/2", "1/b", "1/0", "-1/2"] {
            let err = Shard::parse(bad).expect_err(bad);
            assert!(matches!(err, Error::BadShard { .. }), "{bad:?}: {err}");
        }
        // Every index lands in exactly one shard; union is the whole grid.
        let entries: Vec<(usize, char)> = ('a'..='j').enumerate().collect();
        let n = 3;
        let mut seen = Vec::new();
        for i in 0..n {
            let shard = Shard { index: i, count: n };
            for (idx, _) in shard.select(&entries) {
                assert!(shard.selects(idx));
                seen.push(idx);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..entries.len()).collect::<Vec<_>>());
    }

    #[test]
    fn grid_analysis_filter() {
        let grid = GridBuilder::new(2, 1000)
            .analyses(&[AnalysisKind::SimCheck, AnalysisKind::Solvability])
            .over_specs(&[AdversarySpec::catalog("cgp-reduced-lossy-link")]);
        assert_eq!(grid.len(), 4);
        // Canonical order, not the caller's order.
        assert_eq!(grid[0].analysis, AnalysisKind::Solvability);
        assert_eq!(grid[1].analysis, AnalysisKind::SimCheck);
    }
}
