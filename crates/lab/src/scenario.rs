//! Scenarios — the unit of sweep traffic.
//!
//! A [`Scenario`] is *(adversary spec, depth, analysis kind)* plus budgets:
//! exactly one question the paper's machinery can answer about one
//! adversary at one resolution. Grids of scenarios (a catalog × depths ×
//! analyses product) are what the [`runner`](crate::runner) fans out.

use std::fmt;

use adversary::{catalog, DynMA, GeneralMA};
use consensus_core::error::{Error, SpecError};
use dyngraph::Digraph;

/// Which analysis to run on the scenario's `(adversary, depth)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnalysisKind {
    /// The three-valued solvability checker (§5.1 meta-procedure; sweeps
    /// depths `0..=depth` internally).
    Solvability,
    /// Mixed-component census and valence-connecting ε-chain extraction at
    /// the scenario depth (the §6.1 bivalence reconstruction).
    Bivalence,
    /// Broadcastability of every component (Theorem 5.11 / 6.6).
    Broadcastability,
    /// Component statistics: sizes, valences, class distances (Fig. 4/5).
    ComponentStats,
    /// Simulator cross-check: synthesize the universal algorithm if the
    /// space separates and verify it exhaustively; otherwise exhibit a
    /// reference-algorithm violation.
    SimCheck,
}

impl AnalysisKind {
    /// All kinds, in stable grid order.
    pub const ALL: [AnalysisKind; 5] = [
        AnalysisKind::Solvability,
        AnalysisKind::Bivalence,
        AnalysisKind::Broadcastability,
        AnalysisKind::ComponentStats,
        AnalysisKind::SimCheck,
    ];

    /// The stable machine name (CLI and result-store key).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Solvability => "solvability",
            AnalysisKind::Bivalence => "bivalence",
            AnalysisKind::Broadcastability => "broadcastability",
            AnalysisKind::ComponentStats => "component-stats",
            AnalysisKind::SimCheck => "sim-check",
        }
    }

    /// The valid machine names, in stable grid order.
    pub const NAMES: [&'static str; 5] =
        ["solvability", "bivalence", "broadcastability", "component-stats", "sim-check"];

    /// Parse a machine name.
    ///
    /// # Errors
    /// Returns [`Error::UnknownAnalysis`] naming the valid set.
    pub fn parse(name: &str) -> Result<Self, Error> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| Error::UnknownAnalysis { name: name.to_string(), valid: &Self::NAMES })
    }
}

impl fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the scenario's adversary is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// A named entry of [`adversary::catalog::entries`].
    Catalog(String),
    /// An oblivious `n = 2` adversary over parsed arrow tokens
    /// (`"-> <- <->"`), optionally with an eventually-occurs liveness.
    Pool {
        /// Whitespace-separated 2-process graph tokens.
        word: String,
        /// Liveness: `Some((target_token, deadline))` for "`target` occurs
        /// (within `deadline`)".
        eventually: Option<(String, Option<usize>)>,
    },
}

impl AdversarySpec {
    /// Construct the adversary.
    ///
    /// # Errors
    /// Returns [`Error::Spec`] for unknown catalog names or unparsable
    /// pools.
    pub fn build(&self) -> Result<DynMA, Error> {
        match self {
            AdversarySpec::Catalog(name) => catalog::by_name(name)
                .map(|e| e.build())
                .ok_or_else(|| Error::Spec(SpecError::UnknownCatalog { name: name.clone() })),
            AdversarySpec::Pool { word, eventually } => {
                let pool = parse_pool(word)?;
                match eventually {
                    None => Ok(Box::new(GeneralMA::oblivious(pool))),
                    Some((target, deadline)) => {
                        let target = parse_graph(target)?;
                        Ok(Box::new(GeneralMA::eventually_graph(pool, target, *deadline)))
                    }
                }
            }
        }
    }

    /// The display label used in result records.
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::Catalog(name) => name.clone(),
            AdversarySpec::Pool { word, eventually: None } => format!("pool({word})"),
            AdversarySpec::Pool { word, eventually: Some((t, None)) } => {
                format!("pool({word}) ◇{t}")
            }
            AdversarySpec::Pool { word, eventually: Some((t, Some(r))) } => {
                format!("pool({word}) {t} by {r}")
            }
        }
    }

    /// The ground-truth checker outcome, where known (catalog entries only).
    pub fn expected(&self) -> Option<catalog::ExpectedOutcome> {
        match self {
            AdversarySpec::Catalog(name) => catalog::by_name(name).map(|e| e.expected),
            AdversarySpec::Pool { .. } => None,
        }
    }
}

fn parse_graph(token: &str) -> Result<Digraph, Error> {
    Digraph::parse2(token).map_err(|e| {
        Error::Spec(SpecError::BadGraph { token: token.to_string(), reason: e.to_string() })
    })
}

fn parse_pool(word: &str) -> Result<Vec<Digraph>, Error> {
    let graphs: Result<Vec<Digraph>, Error> = word.split_whitespace().map(parse_graph).collect();
    let graphs = graphs?;
    if graphs.is_empty() {
        return Err(Error::Spec(SpecError::EmptyPool));
    }
    Ok(graphs)
}

/// One unit of sweep traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The adversary.
    pub spec: AdversarySpec,
    /// The resolution depth `t` (`ε = 2^{−t}`).
    pub depth: usize,
    /// The analysis to run.
    pub analysis: AnalysisKind,
    /// Step budget: maximum admissible runs per expansion.
    pub max_runs: usize,
}

impl Scenario {
    /// A human-readable one-liner.
    pub fn label(&self) -> String {
        format!("{}@{}/{}", self.spec.label(), self.depth, self.analysis)
    }
}

/// A deterministic `i/n` partition of the scenario grid, so one sweep fans
/// out across CI jobs or machines. Assignment is round-robin on the global
/// grid index (`index % count == shard.index`), which balances depths and
/// analyses across shards; the selected entries keep their global indices,
/// so shard outputs merge back into the unsharded report exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards, ≥ 1.
    pub count: usize,
}

impl Shard {
    /// Parse the CLI form `"i/n"`.
    ///
    /// # Errors
    /// Returns [`Error::BadShard`] for malformed input, `n = 0`, and
    /// `i ≥ n`.
    pub fn parse(s: &str) -> Result<Shard, Error> {
        let bad = |reason: String| Error::BadShard { spec: s.to_string(), reason };
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| bad(format!("shard spec {s:?} is not of the form i/n")))?;
        let index: usize =
            i.trim().parse().map_err(|_| bad(format!("bad shard index in {s:?}")))?;
        let count: usize =
            n.trim().parse().map_err(|_| bad(format!("bad shard count in {s:?}")))?;
        if count == 0 {
            return Err(bad("shard count must be at least 1".to_string()));
        }
        if index >= count {
            return Err(bad(format!("shard index {index} out of range for {count} shards")));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns global grid index `index`.
    pub fn selects(&self, index: usize) -> bool {
        index % self.count == self.index
    }

    /// This shard's slice of an indexed grid.
    pub fn select<T: Clone>(&self, entries: &[(usize, T)]) -> Vec<(usize, T)> {
        entries.iter().filter(|(i, _)| self.selects(*i)).cloned().collect()
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Deterministic scenario grids.
#[derive(Debug, Clone)]
pub struct GridBuilder {
    depths: Vec<usize>,
    analyses: Vec<AnalysisKind>,
    max_runs: usize,
}

impl GridBuilder {
    /// Depths `1..=max_depth`, all analyses, the given step budget.
    pub fn new(max_depth: usize, max_runs: usize) -> Self {
        GridBuilder {
            depths: (1..=max_depth).collect(),
            analyses: AnalysisKind::ALL.to_vec(),
            max_runs,
        }
    }

    /// Restrict the analyses (grid order follows [`AnalysisKind::ALL`]).
    pub fn analyses(mut self, kinds: &[AnalysisKind]) -> Self {
        self.analyses = AnalysisKind::ALL.into_iter().filter(|k| kinds.contains(k)).collect();
        self
    }

    /// The grid over the whole built-in catalog, in catalog × depth ×
    /// analysis order.
    pub fn over_catalog(&self) -> Vec<Scenario> {
        let specs: Vec<AdversarySpec> = catalog::entries()
            .iter()
            .map(|e| AdversarySpec::Catalog(e.name.to_string()))
            .collect();
        self.over_specs(&specs)
    }

    /// The grid over explicit specs, in spec × depth × analysis order.
    pub fn over_specs(&self, specs: &[AdversarySpec]) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(specs.len() * self.depths.len() * self.analyses.len());
        for spec in specs {
            for &depth in &self.depths {
                for &analysis in &self.analyses {
                    out.push(Scenario {
                        spec: spec.clone(),
                        depth,
                        analysis,
                        max_runs: self.max_runs,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_names_roundtrip() {
        for (kind, name) in AnalysisKind::ALL.into_iter().zip(AnalysisKind::NAMES) {
            assert_eq!(kind.name(), name);
            assert_eq!(AnalysisKind::parse(kind.name()).unwrap(), kind);
        }
        // The error names the valid set, so a typo is self-explaining.
        let err = AnalysisKind::parse("nope").unwrap_err();
        assert!(matches!(err, Error::UnknownAnalysis { .. }));
        assert!(err.to_string().contains("solvability, bivalence"), "{err}");
    }

    #[test]
    fn catalog_spec_builds() {
        let spec = AdversarySpec::Catalog("sw-lossy-link".to_string());
        let ma = spec.build().unwrap();
        assert_eq!(ma.n(), 2);
        assert_eq!(spec.expected(), Some(None));
        assert!(AdversarySpec::Catalog("missing".into()).build().is_err());
    }

    #[test]
    fn pool_spec_builds() {
        let spec = AdversarySpec::Pool { word: "-> <-".to_string(), eventually: None };
        let ma = spec.build().unwrap();
        assert!(ma.is_compact());
        assert_eq!(ma.pool_hint().unwrap().len(), 2);

        let live = AdversarySpec::Pool {
            word: "-> <- <->".to_string(),
            eventually: Some(("<->".to_string(), Some(2))),
        };
        assert!(live.build().unwrap().is_compact());
        let nc = AdversarySpec::Pool {
            word: "-> <- <->".to_string(),
            eventually: Some(("<->".to_string(), None)),
        };
        assert!(!nc.build().unwrap().is_compact());
    }

    #[test]
    fn bad_pool_rejected() {
        for word in ["", "xx", "-> zz"] {
            let spec = AdversarySpec::Pool { word: word.to_string(), eventually: None };
            assert!(spec.build().is_err(), "{word:?} should fail");
        }
    }

    #[test]
    fn grid_is_deterministic_and_ordered() {
        let grid = GridBuilder::new(3, 100_000).over_catalog();
        let again = GridBuilder::new(3, 100_000).over_catalog();
        assert_eq!(grid, again);
        let per_entry = 3 * AnalysisKind::ALL.len();
        assert_eq!(grid.len(), adversary::catalog::entries().len() * per_entry);
        // First block: first catalog entry, depth 1, analyses in ALL order.
        assert_eq!(grid[0].depth, 1);
        assert_eq!(grid[0].analysis, AnalysisKind::Solvability);
        assert_eq!(grid[1].analysis, AnalysisKind::Bivalence);
    }

    #[test]
    fn shard_parse_and_partition() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["", "1", "2/2", "3/2", "a/2", "1/b", "1/0", "-1/2"] {
            let err = Shard::parse(bad).expect_err(bad);
            assert!(matches!(err, Error::BadShard { .. }), "{bad:?}: {err}");
        }
        // Every index lands in exactly one shard; union is the whole grid.
        let entries: Vec<(usize, char)> = ('a'..='j').enumerate().collect();
        let n = 3;
        let mut seen = Vec::new();
        for i in 0..n {
            let shard = Shard { index: i, count: n };
            for (idx, _) in shard.select(&entries) {
                assert!(shard.selects(idx));
                seen.push(idx);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..entries.len()).collect::<Vec<_>>());
    }

    #[test]
    fn grid_analysis_filter() {
        let grid = GridBuilder::new(2, 1000)
            .analyses(&[AnalysisKind::SimCheck, AnalysisKind::Solvability])
            .over_specs(&[AdversarySpec::Catalog("cgp-reduced-lossy-link".into())]);
        assert_eq!(grid.len(), 4);
        // Canonical order, not the caller's order.
        assert_eq!(grid[0].analysis, AnalysisKind::Solvability);
        assert_eq!(grid[1].analysis, AnalysisKind::SimCheck);
    }
}
