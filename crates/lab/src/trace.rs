//! Trace-file tooling: parse, validate, and render the JSONL span files
//! written by `--trace-out`.
//!
//! A trace file holds one [`consensus_obs::trace::SpanRecord`] per line
//! (see its `to_jsonl`). This module is the *consumer* side: the
//! `consensus-lab trace-check` CI step validates every line against the
//! span schema and asserts the parent/child nesting is well-formed, and
//! `consensus-lab report --timings` renders the per-stage time-tree that
//! makes cold-sweep hotspots visible.

use std::collections::HashMap;

use crate::json::{self, Value};

/// The span names the workspace emits; `trace-check` rejects anything
/// else so a schema drift fails CI instead of silently polluting traces.
pub const KNOWN_SPANS: &[&str] = &[
    "sweep",
    "analysis.solvability",
    "analysis.bivalence",
    "analysis.broadcastability",
    "analysis.component-stats",
    "analysis.sim-check",
    "cache.lookup",
    "cert.extract",
    "cert.verify",
    "journal.load",
    "expand",
    "shard",
    "absorb",
    "components",
    "http.request",
    "cluster.sweep",
    "cluster.shard",
    "cluster.spotcheck",
];

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The span name.
    pub name: String,
    /// Process-unique span id.
    pub id: u64,
    /// The parent span's id, if any.
    pub parent: Option<u64>,
    /// Microseconds from the trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// The attribute object, kept as parsed JSON.
    pub attrs: Value,
}

impl TraceSpan {
    /// Parse one JSONL line against the span schema. Errors name the
    /// missing or mistyped field.
    ///
    /// # Errors
    /// Returns a message describing the first schema violation.
    pub fn parse(line: &str) -> Result<TraceSpan, String> {
        let v = json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let Value::Obj(ref fields) = v else {
            return Err("line is not a JSON object".into());
        };
        let allowed = ["span", "id", "parent", "start_us", "dur_us", "attrs"];
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown field {key:?}"));
            }
        }
        let name = v
            .get("span")
            .and_then(Value::as_str)
            .ok_or("missing or non-string \"span\"")?
            .to_string();
        let id = v.get("id").and_then(as_u64).ok_or("missing or non-integer \"id\"")?;
        if id == 0 {
            return Err("span id must be positive".into());
        }
        let parent = match v.get("parent") {
            None => return Err("missing \"parent\" (use null for roots)".into()),
            Some(Value::Null) => None,
            Some(p) => Some(as_u64(p).ok_or("non-integer \"parent\"")?),
        };
        let start_us = v
            .get("start_us")
            .and_then(as_u64)
            .ok_or("missing or non-integer \"start_us\"")?;
        let dur_us = v.get("dur_us").and_then(as_u64).ok_or("missing or non-integer \"dur_us\"")?;
        let attrs = v.get("attrs").cloned().ok_or("missing \"attrs\"")?;
        if !matches!(attrs, Value::Obj(_)) {
            return Err("\"attrs\" is not an object".into());
        }
        Ok(TraceSpan { name, id, parent, start_us, dur_us, attrs })
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    v.as_i64().and_then(|n| u64::try_from(n).ok())
}

/// What [`validate`] certifies about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Spans in the file.
    pub spans: usize,
    /// Spans with no parent.
    pub roots: usize,
}

/// Parse and validate a whole trace file: every line must satisfy the
/// span schema with a [known](KNOWN_SPANS) span name and a unique id;
/// every parent reference must resolve to a span in the file; and every
/// child's `[start, start+dur]` interval must lie within its parent's —
/// the well-formed-nesting guarantee the guard discipline provides.
///
/// # Errors
/// Returns `Err` naming the first offending line (1-based) and why.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span = TraceSpan::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if !KNOWN_SPANS.contains(&span.name.as_str()) {
            return Err(format!("line {}: unknown span name {:?}", lineno + 1, span.name));
        }
        spans.push((lineno + 1, span));
    }
    let mut by_id: HashMap<u64, &TraceSpan> = HashMap::with_capacity(spans.len());
    for (lineno, span) in &spans {
        if by_id.insert(span.id, span).is_some() {
            return Err(format!("line {lineno}: duplicate span id {}", span.id));
        }
    }
    let mut roots = 0;
    for (lineno, span) in &spans {
        match span.parent {
            None => roots += 1,
            Some(pid) => {
                let parent = by_id
                    .get(&pid)
                    .ok_or_else(|| format!("line {lineno}: parent {pid} not in trace"))?;
                if pid == span.id {
                    return Err(format!("line {lineno}: span {} is its own parent", span.id));
                }
                // Containment only holds within one process: `start_us`
                // counts from each process's own trace epoch, so a
                // stitched cross-node edge (the child and parent carry
                // different `node` labels, or only one side carries one)
                // compares incommensurable clocks and is exempt.
                let child_node = span.attrs.get("node").and_then(Value::as_str);
                let parent_node = parent.attrs.get("node").and_then(Value::as_str);
                if child_node == parent_node {
                    let child_end = span.start_us + span.dur_us;
                    let parent_end = parent.start_us + parent.dur_us;
                    if span.start_us < parent.start_us || child_end > parent_end {
                        return Err(format!(
                            "line {lineno}: span {} [{}, {child_end}]us escapes parent {} \
                             [{}, {parent_end}]us",
                            span.id, span.start_us, pid, parent.start_us,
                        ));
                    }
                }
            }
        }
    }
    // Parent links must be acyclic. Non-root spans point at file-resident
    // parents; follow each chain with a step bound so a (schema-valid but
    // pathological) parent cycle is reported, not looped on.
    for (lineno, span) in &spans {
        let mut cursor = span.parent;
        let mut steps = 0;
        while let Some(pid) = cursor {
            steps += 1;
            if steps > spans.len() {
                return Err(format!("line {lineno}: parent chain of span {} cycles", span.id));
            }
            cursor = by_id[&pid].parent;
        }
    }
    Ok(TraceSummary { spans: spans.len(), roots })
}

/// One row of the aggregated time-tree: a stage (span name) at one
/// nesting path, with call count and total duration.
#[derive(Debug, Clone, PartialEq)]
struct TreeRow {
    path: Vec<String>,
    count: usize,
    total_us: u64,
}

/// Render the per-stage time-tree of a validated trace: spans aggregated
/// by their *name path* (root stage → … → this stage), indented, with
/// call counts, total wall time, and the percentage of the traced root
/// total — `consensus-lab report --timings`.
pub fn render_timings(spans: &[TraceSpan]) -> String {
    let by_id: HashMap<u64, &TraceSpan> = spans.iter().map(|s| (s.id, s)).collect();
    let path_of = |span: &TraceSpan| -> Vec<String> {
        let mut path = vec![span.name.clone()];
        let mut cursor = span.parent;
        let mut steps = 0;
        while let Some(pid) = cursor {
            steps += 1;
            if steps > spans.len() {
                break; // cyclic parents: truncate rather than hang
            }
            let Some(parent) = by_id.get(&pid) else { break };
            path.push(parent.name.clone());
            cursor = parent.parent;
        }
        path.reverse();
        path
    };
    let mut rows: Vec<TreeRow> = Vec::new();
    for span in spans {
        let path = path_of(span);
        match rows.iter_mut().find(|r| r.path == path) {
            Some(row) => {
                row.count += 1;
                row.total_us += span.dur_us;
            }
            None => rows.push(TreeRow { path, count: 1, total_us: span.dur_us }),
        }
    }
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    let root_total: u64 = rows
        .iter()
        .filter(|r| r.path.len() == 1)
        .map(|r| r.total_us)
        .sum::<u64>()
        .max(1);
    let name_width = rows
        .iter()
        .map(|r| 2 * (r.path.len() - 1) + r.path.last().map_or(0, String::len))
        .max()
        .unwrap_or(0)
        .max(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>7}  {:>12}  {:>6}\n",
        "stage", "calls", "total_ms", "share"
    ));
    for row in &rows {
        let indent = "  ".repeat(row.path.len() - 1);
        let name = row.path.last().expect("paths are nonempty");
        let label = format!("{indent}{name}");
        out.push_str(&format!(
            "{label:<name_width$}  {:>7}  {:>12.3}  {:>5.1}%\n",
            row.count,
            row.total_us as f64 / 1e3,
            100.0 * row.total_us as f64 / root_total as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_obs::trace::tracer;

    fn line(name: &str, id: u64, parent: Option<u64>, start: u64, dur: u64) -> String {
        let parent = parent.map_or("null".to_string(), |p| p.to_string());
        format!(
            "{{\"span\":\"{name}\",\"id\":{id},\"parent\":{parent},\
             \"start_us\":{start},\"dur_us\":{dur},\"attrs\":{{}}}}"
        )
    }

    #[test]
    fn valid_nested_trace_passes() {
        let text = [
            line("expand", 2, Some(1), 5, 10),
            line("shard", 3, Some(2), 6, 4),
            line("cache.lookup", 1, None, 0, 100),
        ]
        .join("\n");
        let summary = validate(&text).unwrap();
        assert_eq!(summary, TraceSummary { spans: 3, roots: 1 });
        assert_eq!(validate("").unwrap(), TraceSummary { spans: 0, roots: 0 });
    }

    #[test]
    fn schema_violations_are_named() {
        assert!(validate("not json").unwrap_err().contains("line 1"));
        assert!(validate("{\"span\":\"expand\"}").unwrap_err().contains("\"id\""));
        let unknown = line("mystery", 1, None, 0, 1);
        assert!(validate(&unknown).unwrap_err().contains("unknown span name"));
        let missing_parent = line("expand", 2, Some(9), 0, 1);
        assert!(validate(&missing_parent).unwrap_err().contains("parent 9 not in trace"));
        let dup = [line("expand", 1, None, 0, 1), line("expand", 1, None, 0, 1)].join("\n");
        assert!(validate(&dup).unwrap_err().contains("duplicate"));
        let extra = "{\"span\":\"expand\",\"id\":1,\"parent\":null,\"start_us\":0,\
                     \"dur_us\":1,\"attrs\":{},\"bonus\":1}";
        assert!(validate(extra).unwrap_err().contains("unknown field"));
    }

    #[test]
    fn containment_violations_fail() {
        let escapes = [line("expand", 1, None, 10, 5), line("shard", 2, Some(1), 8, 3)].join("\n");
        assert!(validate(&escapes).unwrap_err().contains("escapes parent"));
        let self_parent = line("expand", 1, Some(1), 0, 1);
        assert!(validate(&self_parent).unwrap_err().contains("its own parent"));
    }

    #[test]
    fn cross_node_edges_are_exempt_from_containment() {
        // A stitched worker span's clock counts from its own process
        // epoch, so in raw micros it may "escape" its coordinator-side
        // parent; the differing `node` labelling exempts the edge.
        let parent = line("cluster.shard", 1, None, 1000, 50);
        let child = "{\"span\":\"http.request\",\"id\":4294967297,\"parent\":1,\
                     \"start_us\":5,\"dur_us\":3,\"attrs\":{\"node\":\"127.0.0.1:9\"}}";
        let summary = validate(&format!("{parent}\n{child}")).unwrap();
        assert_eq!(summary, TraceSummary { spans: 2, roots: 1 });
        // Two spans on the *same* node share a clock: still enforced.
        let a = "{\"span\":\"http.request\",\"id\":10,\"parent\":null,\
                 \"start_us\":10,\"dur_us\":5,\"attrs\":{\"node\":\"w\"}}";
        let b = "{\"span\":\"expand\",\"id\":11,\"parent\":10,\
                 \"start_us\":2,\"dur_us\":3,\"attrs\":{\"node\":\"w\"}}";
        assert!(validate(&format!("{a}\n{b}")).unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn real_tracer_output_validates() {
        // End-to-end: what the tracer writes, this module certifies.
        tracer().disable();
        let _ = tracer().drain();
        tracer().enable();
        {
            let _root = tracer().span("cache.lookup");
            let _inner = tracer().span("expand");
        }
        tracer().disable();
        let text: String = tracer().drain().iter().map(|r| r.to_jsonl() + "\n").collect();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.roots, 1);
    }

    #[test]
    fn timings_tree_aggregates_by_path() {
        let spans: Vec<TraceSpan> = [
            line("sweep", 1, None, 0, 1000),
            line("analysis.solvability", 2, Some(1), 0, 400),
            line("analysis.solvability", 3, Some(1), 400, 400),
            line("cache.lookup", 4, Some(2), 0, 300),
            line("cache.lookup", 5, Some(3), 400, 100),
            line("expand", 6, Some(4), 0, 200),
        ]
        .iter()
        .map(|l| TraceSpan::parse(l).unwrap())
        .collect();
        let tree = render_timings(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("stage"));
        assert!(lines[1].starts_with("sweep"));
        assert!(lines[2].starts_with("  analysis.solvability"));
        assert!(lines[2].contains('2'), "two analysis spans aggregate: {}", lines[2]);
        assert!(lines[3].starts_with("    cache.lookup"));
        assert!(lines[4].starts_with("      expand"));
        // The two cache.lookup spans sum to 0.4 ms of the 1 ms root.
        assert!(lines[3].contains("0.400"), "{}", lines[3]);
        assert!(lines[3].contains("40.0%"), "{}", lines[3]);
    }
}
