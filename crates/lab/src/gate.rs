//! The bench-regression gate (`consensus-lab bench-gate`).
//!
//! CI re-runs the benches and compares the fresh `BENCH_*.json` datum
//! against the committed baseline: wall-clock keys (`*_ms`) may regress up
//! to a tolerance, structural counters named `--exact` must match to the
//! digit (a drifted run/view/expansion count is a determinism bug, not
//! noise). The gate reads only the top-level numeric fields of the datum
//! object — nested per-depth arrays are context for humans.

use std::fmt;

use crate::json::Value;

/// How one key is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Wall-clock: fresh may exceed baseline by at most the tolerance.
    Timing,
    /// Structural counter: fresh must equal baseline exactly.
    Exact,
}

/// The judgement of one compared key.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLine {
    /// The JSON key compared.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Judgement rule applied.
    pub kind: GateKind,
    /// Whether the key passed.
    pub ok: bool,
}

impl fmt::Display for GateLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.ok { "ok" } else { "FAIL" };
        match self.kind {
            GateKind::Timing => {
                let ratio = if self.baseline > 0.0 {
                    format!("{:.2}×", self.fresh / self.baseline)
                } else {
                    "n/a".to_string()
                };
                write!(
                    f,
                    "{verdict:<4} {key:<28} {base:>12.3} → {fresh:>12.3} ms ({ratio})",
                    key = self.key,
                    base = self.baseline,
                    fresh = self.fresh,
                )
            }
            GateKind::Exact => write!(
                f,
                "{verdict:<4} {key:<28} {base:>12} → {fresh:>12} (exact)",
                key = self.key,
                base = self.baseline,
                fresh = self.fresh,
            ),
        }
    }
}

/// The full gate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-key judgements, in baseline key order.
    pub lines: Vec<GateLine>,
    /// The tolerance applied to timing keys, in percent.
    pub tolerance_pct: f64,
}

impl GateReport {
    /// Keys that failed.
    pub fn failures(&self) -> Vec<&GateLine> {
        self.lines.iter().filter(|l| !l.ok).collect()
    }

    /// Whether every key passed.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| l.ok)
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        let failures = self.failures().len();
        if failures == 0 {
            write!(
                f,
                "bench gate passed: {} key(s) within {:.0}% of baseline",
                self.lines.len(),
                self.tolerance_pct
            )
        } else {
            write!(
                f,
                "bench gate FAILED: {failures} of {} key(s) regressed beyond {:.0}%",
                self.lines.len(),
                self.tolerance_pct
            )
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Compare `fresh` against `baseline`.
///
/// Timing keys are every top-level numeric key of the baseline ending in
/// `_ms` — unless `keys` restricts the set. Keys listed in `exact` are
/// compared for equality instead. A gated key missing from `fresh` (or
/// non-numeric on either side) is an error, not a silent pass.
///
/// # Errors
/// Returns a message naming the offending key.
pub fn compare(
    baseline: &Value,
    fresh: &Value,
    tolerance_pct: f64,
    keys: Option<&[String]>,
    exact: &[String],
) -> Result<GateReport, String> {
    let Value::Obj(fields) = baseline else {
        return Err("baseline is not a JSON object".into());
    };
    let timing: Vec<String> = match keys {
        Some(list) => list.to_vec(),
        None => fields
            .iter()
            .filter(|(k, v)| k.ends_with("_ms") && numeric(v).is_some())
            .map(|(k, _)| k.clone())
            .collect(),
    };
    let mut lines = Vec::new();
    for (kind, key) in timing
        .iter()
        .map(|k| (GateKind::Timing, k))
        .chain(exact.iter().map(|k| (GateKind::Exact, k)))
    {
        let base = baseline
            .get(key)
            .and_then(numeric)
            .ok_or_else(|| format!("baseline key {key:?} is missing or not numeric"))?;
        let now = fresh
            .get(key)
            .and_then(numeric)
            .ok_or_else(|| format!("fresh key {key:?} is missing or not numeric"))?;
        let ok = match kind {
            // A zero baseline means "too small to measure" — any fresh
            // value is equally unmeasurable noise, never a regression.
            GateKind::Timing => base <= 0.0 || now <= base * (1.0 + tolerance_pct / 100.0),
            GateKind::Exact => now == base,
        };
        lines.push(GateLine { key: key.clone(), baseline: base, fresh: now, kind, ok });
    }
    if lines.is_empty() {
        return Err("nothing to gate: no timing keys found and no --exact keys given".into());
    }
    Ok(GateReport { lines, tolerance_pct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn obj(text: &str) -> Value {
        parse(text).unwrap()
    }

    #[test]
    fn within_tolerance_passes() {
        let base = obj(r#"{"cold_ms": 100.0, "warm_ms": 10.0, "runs": 240}"#);
        let fresh = obj(r#"{"cold_ms": 120.0, "warm_ms": 9.0, "runs": 240}"#);
        let report = compare(&base, &fresh, 25.0, None, &[]).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.lines.len(), 2, "only *_ms keys are gated by default");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = obj(r#"{"cold_ms": 100.0}"#);
        let fresh = obj(r#"{"cold_ms": 126.0}"#);
        let report = compare(&base, &fresh, 25.0, None, &[]).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
        assert!(report.to_string().contains("FAILED"));
    }

    #[test]
    fn improvements_always_pass() {
        let base = obj(r#"{"cold_ms": 100.0}"#);
        let fresh = obj(r#"{"cold_ms": 1.0}"#);
        assert!(compare(&base, &fresh, 25.0, None, &[]).unwrap().passed());
    }

    #[test]
    fn zero_baseline_never_fails_the_timing_gate() {
        // A 0.0 baseline means "too small to measure" — any fresh value is
        // noise at the same scale, and the report must not print NaN.
        let base = obj(r#"{"warm_ms": 0.0}"#);
        let fresh = obj(r#"{"warm_ms": 0.4}"#);
        let report = compare(&base, &fresh, 25.0, None, &[]).unwrap();
        assert!(report.passed(), "{report}");
        assert!(report.to_string().contains("n/a"));
    }

    #[test]
    fn exact_keys_must_match_to_the_digit() {
        let base = obj(r#"{"cold_ms": 100.0, "runs": 240}"#);
        let drifted = obj(r#"{"cold_ms": 100.0, "runs": 241}"#);
        let report = compare(&base, &drifted, 25.0, None, &["runs".to_string()]).unwrap();
        assert!(!report.passed());
        let line = &report.failures()[0];
        assert_eq!(line.key, "runs");
        assert_eq!(line.kind, GateKind::Exact);
    }

    #[test]
    fn explicit_keys_restrict_the_timing_set() {
        let base = obj(r#"{"cold_ms": 100.0, "warm_ms": 1.0}"#);
        let fresh = obj(r#"{"cold_ms": 100.0, "warm_ms": 99.0}"#);
        // warm_ms regressed, but only cold_ms is gated.
        let report = compare(&base, &fresh, 25.0, Some(&["cold_ms".to_string()]), &[]).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn missing_fresh_key_is_an_error() {
        let base = obj(r#"{"cold_ms": 100.0}"#);
        let fresh = obj(r#"{"other_ms": 1.0}"#);
        let err = compare(&base, &fresh, 25.0, None, &[]).unwrap_err();
        assert!(err.contains("cold_ms"));
    }

    #[test]
    fn empty_gate_is_an_error() {
        let base = obj(r#"{"runs": 240}"#);
        let err = compare(&base, &base, 25.0, None, &[]).unwrap_err();
        assert!(err.contains("nothing to gate"));
    }
}
