//! The `consensus-lab` CLI: batch experiments over message adversaries.
//!
//! ```text
//! consensus-lab catalog
//! consensus-lab check --adversary sw-lossy-link --depth 4 [--analysis solvability]
//! consensus-lab check --pool "-> <- <->" --depth 3
//! consensus-lab sweep --catalog --max-depth 4 [--out lab-results] [--threads 8]
//!                     [--analyses solvability,bivalence] [--budget 2000000] [--repeat 2]
//! consensus-lab report --input lab-results/results.jsonl
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use consensus_lab::cache::SpaceCache;
use consensus_lab::report::Aggregate;
use consensus_lab::runner::{execute_scenario, SweepRunner};
use consensus_lab::scenario::{AdversarySpec, AnalysisKind, GridBuilder, Scenario};
use consensus_lab::store::parse_jsonl;

const USAGE: &str = "\
consensus-lab — batch experiments over message adversaries (PODC'19 Nowak–Schmid–Winkler)

USAGE:
    consensus-lab catalog
        List the built-in adversary catalog.

    consensus-lab check (--adversary NAME | --pool \"-> <- <->\" [--eventually G [--by R]])
                        [--depth D] [--analysis KIND] [--budget RUNS]
        Run one scenario and print the record.

    consensus-lab sweep --catalog [--max-depth D] [--analyses K1,K2] [--budget RUNS]
                        [--threads N] [--out DIR] [--repeat N] [--time-limit-ms MS]
        Run the scenario grid over the catalog in parallel; write
        DIR/results.jsonl and DIR/summary.csv (default DIR: lab-results).

    consensus-lab report --input FILE.jsonl
        Aggregate a stored result file.

ANALYSES: solvability, bivalence, broadcastability, component-stats, sim-check
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus bare `--switch`es.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    pairs.push((key.to_string(), Some(v.clone())));
                    i += 2;
                }
                None => {
                    pairs.push((key.to_string(), None));
                    i += 1;
                }
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            None => Ok(default),
            Some((_, None)) => Err(format!("--{key} expects a number")),
            Some((_, Some(v))) => {
                v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}"))
            }
        }
    }

    /// Reject flags outside the subcommand's vocabulary — a mistyped
    /// experiment parameter must fail loudly, not run with a default.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(if allowed.is_empty() {
                    format!("unknown flag --{key} (this subcommand takes no flags)")
                } else {
                    format!(
                        "unknown flag --{key} (expected one of: {})",
                        allowed.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
                    )
                });
            }
        }
        Ok(())
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// `println!` that tolerates a closed stdout (`consensus-lab ... | head`):
/// Rust's default SIGPIPE handling turns EPIPE into a panic inside
/// `println!`, so line output goes through this instead.
fn emit(line: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn cmd_catalog(args: &[String]) -> ExitCode {
    match Flags::parse(args).and_then(|flags| flags.reject_unknown(&[])) {
        Ok(()) => {}
        Err(e) => return fail(&e),
    }
    emit(format_args!("{:<30} {:>2} {:>8} {:<12} summary", "name", "n", "compact", "expected"));
    for entry in adversary::catalog::entries() {
        let ma = entry.build();
        let expected = match entry.expected {
            Some(true) => "solvable",
            Some(false) => "unsolvable",
            None => "mixed",
        };
        emit(format_args!(
            "{:<30} {:>2} {:>8} {:<12} {}",
            entry.name,
            ma.n(),
            ma.is_compact(),
            expected,
            entry.summary
        ));
    }
    ExitCode::SUCCESS
}

fn parse_spec(flags: &Flags) -> Result<AdversarySpec, String> {
    match (flags.get("adversary"), flags.get("pool")) {
        (Some(name), None) => {
            if flags.has("eventually") || flags.has("by") {
                return Err("--eventually/--by only apply to --pool adversaries".into());
            }
            Ok(AdversarySpec::Catalog(name.to_string()))
        }
        (None, Some(word)) => {
            let eventually = match flags.get("eventually") {
                None => None,
                Some(target) => {
                    // A malformed deadline must not silently fall back to
                    // "no deadline" — that is a different (non-compact)
                    // adversary.
                    let deadline = match flags.get("by") {
                        None if flags.has("by") => return Err("--by expects a round number".into()),
                        None => None,
                        Some(r) => Some(
                            r.parse()
                                .map_err(|_| format!("--by expects a round number, got {r:?}"))?,
                        ),
                    };
                    Some((target.to_string(), deadline))
                }
            };
            Ok(AdversarySpec::Pool { word: word.to_string(), eventually })
        }
        (Some(_), Some(_)) => Err("--adversary and --pool are mutually exclusive".into()),
        (None, None) => Err("check needs --adversary NAME or --pool \"...\"".into()),
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "adversary",
        "pool",
        "eventually",
        "by",
        "depth",
        "analysis",
        "budget",
    ]) {
        return fail(&e);
    }
    let spec = match parse_spec(&flags) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let depth = match flags.get_usize("depth", 4) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let budget = match flags.get_usize("budget", 2_000_000) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let analyses: Vec<AnalysisKind> = match flags.get("analysis") {
        None => AnalysisKind::ALL.to_vec(),
        Some(name) => match AnalysisKind::parse(name) {
            Some(kind) => vec![kind],
            None => return fail(&format!("unknown analysis {name:?}")),
        },
    };
    let cache = SpaceCache::new();
    let mut errored = false;
    for analysis in analyses {
        let scenario = Scenario { spec: spec.clone(), depth, analysis, max_runs: budget };
        let record = execute_scenario(0, &scenario, &cache, None);
        errored |= record.outcome.verdict == "error";
        emit(format_args!("{}", record.to_json()));
    }
    let stats = cache.stats();
    eprintln!(
        "[cache] constructions: {}, hits: {}, budget misses: {}",
        stats.builds, stats.hits, stats.budget_misses
    );
    if errored {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&[
        "catalog",
        "max-depth",
        "analyses",
        "budget",
        "threads",
        "out",
        "repeat",
        "time-limit-ms",
    ]) {
        return fail(&e);
    }
    if !flags.has("catalog") {
        return fail("sweep currently requires --catalog (the built-in adversary registry)");
    }
    let max_depth = match flags.get_usize("max-depth", 4) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let budget = match flags.get_usize("budget", 2_000_000) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let threads = match flags.get_usize("threads", 0) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let repeat = match flags.get_usize("repeat", 1) {
        Ok(r) => r.max(1),
        Err(e) => return fail(&e),
    };
    let out = PathBuf::from(flags.get("out").unwrap_or("lab-results"));
    let mut builder = GridBuilder::new(max_depth, budget);
    if let Some(list) = flags.get("analyses") {
        let kinds: Result<Vec<AnalysisKind>, String> = list
            .split(',')
            .map(|name| {
                AnalysisKind::parse(name.trim()).ok_or_else(|| format!("unknown analysis {name:?}"))
            })
            .collect();
        match kinds {
            Ok(kinds) => builder = builder.analyses(&kinds),
            Err(e) => return fail(&e),
        }
    }
    let grid = builder.over_catalog();
    let mut runner = SweepRunner::new();
    if threads > 0 {
        runner = runner.threads(threads);
    }
    if flags.has("time-limit-ms") {
        match flags.get("time-limit-ms").map(str::parse::<u64>) {
            Some(Ok(ms)) => runner = runner.time_limit(Duration::from_millis(ms)),
            Some(Err(_)) | None => return fail("--time-limit-ms expects a number"),
        }
    }

    // One shared cache across repeats: pass 2+ runs warm and demonstrates
    // constructions ≪ scenarios.
    let cache = SpaceCache::new();
    let mut last = None;
    for pass in 1..=repeat {
        let report = runner.run(&grid, &cache);
        emit(format_args!("[pass {pass}/{repeat}] {}", report.summary()));
        last = Some(report);
    }
    let report = last.expect("repeat >= 1");
    match report.store.write_files(&out) {
        Ok((jsonl, csv)) => {
            emit(format_args!("wrote {} and {}", jsonl.display(), csv.display()));
            for mismatch in report.mismatches() {
                eprintln!(
                    "ground-truth mismatch: {}@{} → {}",
                    mismatch.adversary, mismatch.depth, mismatch.outcome.verdict
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("writing results to {}: {e}", out.display())),
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if let Err(e) = flags.reject_unknown(&["input"]) {
        return fail(&e);
    }
    let Some(input) = flags.get("input") else {
        return fail("report needs --input FILE.jsonl");
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {input}: {e}")),
    };
    match parse_jsonl(&text) {
        Ok(records) => {
            emit(format_args!("{}", Aggregate::from_records(&records)));
            ExitCode::SUCCESS
        }
        Err((line, e)) => fail(&format!("{input}:{line}: {e}")),
    }
}
