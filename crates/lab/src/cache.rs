//! The shared prefix-space memoization cache.
//!
//! Sweeps ask the same *(adversary, depth)* question through several
//! analyses — solvability, bivalence, broadcastability, component stats,
//! simulator checks all start from the same [`PrefixSpace`]. The cache keys
//! spaces by *(structural fingerprint, input domain, depth)* so each
//! expansion is computed once per sweep, across analyses, across scenarios,
//! and across structurally identical catalog entries (e.g. `all-rooted-2`
//! aliases `sw-lossy-link`).
//!
//! Implements [`consensus_core::solvability::SpaceSource`], so the core
//! checker's depth sweep transparently reuses cached spaces too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use adversary::{enumerate, MessageAdversary};
use consensus_core::solvability::SpaceSource;
use consensus_core::PrefixSpace;
use ptgraph::Value;

/// Cache key: structural adversary fingerprint × input domain × depth.
type Key = (u64, Vec<Value>, usize);

/// Failure key: a [`Key`] plus the budget the expansion exceeded.
type FailKey = (u64, Vec<Value>, usize, usize);

/// Counters describing cache effectiveness over a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that triggered a [`PrefixSpace`] construction.
    pub builds: usize,
    /// Requests that exceeded the step budget (not cached).
    pub budget_misses: usize,
}

impl CacheStats {
    /// Total space requests served.
    pub fn requests(&self) -> usize {
        self.hits + self.builds + self.budget_misses
    }
}

/// A thread-safe memoizing [`SpaceSource`]; see the module docs.
///
/// Budget-exceeded outcomes are memoized separately (keyed with the budget)
/// so a sweep does not re-attempt a hopeless expansion per analysis.
#[derive(Debug, Default)]
pub struct SpaceCache {
    spaces: Mutex<HashMap<Key, Arc<PrefixSpace>>>,
    failures: Mutex<HashMap<FailKey, enumerate::BudgetExceeded>>,
    hits: AtomicUsize,
    builds: AtomicUsize,
    budget_misses: AtomicUsize,
}

impl SpaceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            budget_misses: self.budget_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached spaces.
    pub fn len(&self) -> usize {
        self.spaces.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`SpaceSource::space`] plus a flag: `true` if served from the cache.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the expansion exceeds
    /// `max_runs` (the failure is memoized per budget).
    pub fn space_with_meta(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<(Arc<PrefixSpace>, bool), enumerate::BudgetExceeded> {
        let key: Key = (ma.fingerprint(), values.to_vec(), depth);
        if let Some(space) = self.spaces.lock().expect("cache lock poisoned").get(&key) {
            // A hit may carry a space built under a *larger* budget than
            // this request's; that is fine — budgets bound work, not
            // results, and the cached space is exact.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(space), true));
        }
        let fail_key = (key.0, key.1.clone(), key.2, max_runs);
        if let Some(err) = self.failures.lock().expect("cache lock poisoned").get(&fail_key) {
            self.budget_misses.fetch_add(1, Ordering::Relaxed);
            return Err(err.clone());
        }
        // Build outside the locks: expansions dominate and must overlap
        // across worker threads. Two workers racing on one key build twice;
        // the loser's space is dropped (counted as a build either way, so
        // the "constructions < scenarios" telemetry stays honest).
        match PrefixSpace::build(ma, values, depth, max_runs) {
            Ok(space) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                let space = Arc::new(space);
                let mut cached = self.spaces.lock().expect("cache lock poisoned");
                let entry = cached.entry(key).or_insert_with(|| Arc::clone(&space));
                Ok((Arc::clone(entry), false))
            }
            Err(err) => {
                self.budget_misses.fetch_add(1, Ordering::Relaxed);
                self.failures.lock().expect("cache lock poisoned").insert(fail_key, err.clone());
                Err(err)
            }
        }
    }
}

impl SpaceSource for SpaceCache {
    fn space(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Arc<PrefixSpace>, enumerate::BudgetExceeded> {
        self.space_with_meta(ma, values, depth, max_runs).map(|(space, _)| space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;

    #[test]
    fn second_request_hits() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let (a, cached_a) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let (b, cached_b) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        assert!(!cached_a);
        assert!(cached_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, builds: 1, budget_misses: 0 });
    }

    #[test]
    fn structurally_equal_adversaries_share() {
        let cache = SpaceCache::new();
        let mut pool = generators::lossy_link_full();
        let a = GeneralMA::oblivious(pool.clone());
        pool.reverse();
        let b = GeneralMA::oblivious(pool);
        cache.space_with_meta(&a, &[0, 1], 1, 1_000_000).unwrap();
        let (_, cached) = cache.space_with_meta(&b, &[0, 1], 1, 1_000_000).unwrap();
        assert!(cached, "same structure must share one slot");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_depths_and_domains_do_not_collide() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let (d1, _) = cache.space_with_meta(&ma, &[0, 1], 1, 1_000_000).unwrap();
        let (d2, _) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let (t1, _) = cache.space_with_meta(&ma, &[0, 1, 2], 1, 1_000_000).unwrap();
        assert_eq!(d1.depth(), 1);
        assert_eq!(d2.depth(), 2);
        assert_eq!(t1.values().len(), 3);
        assert_eq!(cache.stats().builds, 3);
    }

    #[test]
    fn budget_failures_memoized_per_budget() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10).is_err());
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10).is_err());
        let stats = cache.stats();
        assert_eq!(stats.budget_misses, 2);
        assert_eq!(stats.builds, 0);
        // A larger budget is a fresh attempt.
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10_000_000).is_ok());
        assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn core_checker_pulls_through_the_cache() {
        use consensus_core::solvability::SolvabilityChecker;
        let cache = SpaceCache::new();
        let checker =
            SolvabilityChecker::new(GeneralMA::oblivious(generators::lossy_link_reduced()))
                .max_depth(3);
        let first = checker.check_via(&cache);
        assert!(first.is_solvable());
        let builds_after_first = cache.stats().builds;
        let second = checker.check_via(&cache);
        assert!(second.is_solvable());
        assert_eq!(cache.stats().builds, builds_after_first, "warm re-check must build nothing");
    }
}
