//! The shared prefix-space memoization cache.
//!
//! Sweeps ask the same *(adversary, depth)* question through several
//! analyses — solvability, bivalence, broadcastability, component stats,
//! simulator checks all start from the same [`PrefixSpace`]. The cache keys
//! spaces by *(structural fingerprint, input domain, depth)* so each
//! expansion is computed once per sweep, across analyses, across scenarios,
//! and across structurally identical catalog entries (e.g. `all-rooted-2`
//! aliases `sw-lossy-link`).
//!
//! Implements [`consensus_core::solvability::SpaceSource`], so the core
//! checker's depth sweep transparently reuses cached spaces too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use adversary::{enumerate, MessageAdversary};
use consensus_core::config::ExpandConfig;
use consensus_core::solvability::SpaceSource;
use consensus_core::PrefixSpace;
use consensus_obs::metrics::{registry, Counter, Gauge};
use consensus_obs::trace::tracer;
use ptgraph::Value;

/// Process-global registry mirrors of the cache counters: every
/// [`SpaceCache`] instance (sessions build fresh ones per batch) feeds
/// the same named series, so `/v1/stats` and Prometheus expose lifetime
/// cache effectiveness without holding any particular cache alive.
struct CacheCounters {
    hits: Arc<Counter>,
    builds: Arc<Counter>,
    ladder_hits: Arc<Counter>,
    budget_misses: Arc<Counter>,
    hit_rate_pct: Arc<Gauge>,
}

fn cache_counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters {
        hits: registry().counter("cache.hits"),
        builds: registry().counter("cache.builds"),
        ladder_hits: registry().counter("cache.ladder_hits"),
        budget_misses: registry().counter("cache.budget_misses"),
        hit_rate_pct: registry().gauge("cache.hit_rate_pct"),
    })
}

impl CacheCounters {
    /// Bump the counter for one lookup outcome and refresh the hit-rate
    /// gauge (hits + ladder climbs, as a percentage of all requests).
    fn note(&self, outcome: &'static str) {
        match outcome {
            "hit" => self.hits.inc(),
            "build" => self.builds.inc(),
            "ladder" => self.ladder_hits.inc(),
            _ => self.budget_misses.inc(),
        }
        let avoided = self.hits.get() + self.ladder_hits.get();
        let total = avoided + self.builds.get() + self.budget_misses.get();
        if let Some(pct) = (avoided * 100).checked_div(total) {
            self.hit_rate_pct.set(pct);
        }
    }
}

/// Cache key: structural adversary fingerprint × input domain × depth.
type Key = (u64, Vec<Value>, usize);

/// Failure key: a [`Key`] plus the budget the expansion exceeded.
type FailKey = (u64, Vec<Value>, usize, usize);

/// Counters describing cache effectiveness over a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that triggered a full from-scratch [`PrefixSpace`]
    /// expansion.
    pub builds: usize,
    /// Requests served by *laddering* — extending the deepest cached
    /// ancestor space round-by-round via [`PrefixSpace::extended_from`]
    /// instead of re-expanding from scratch.
    pub ladder_hits: usize,
    /// Scenario outcomes answered from the on-disk verdict journal
    /// ([`crate::persist::DiskCache`]). Always zero for a bare
    /// [`SpaceCache`]; the sweep runner fills it in so one stats struct
    /// carries the whole cache hierarchy.
    pub disk_hits: usize,
    /// Requests that exceeded the step budget (not cached).
    pub budget_misses: usize,
}

impl CacheStats {
    /// Total space requests served (disk hits are scenario-level, not
    /// space-level, and are excluded).
    pub fn requests(&self) -> usize {
        self.hits + self.builds + self.ladder_hits + self.budget_misses
    }

    /// Prefix-space expansions avoided entirely (pure hits plus ladder
    /// extensions plus whole scenarios answered from disk).
    pub fn avoided(&self) -> usize {
        self.hits + self.ladder_hits + self.disk_hits
    }
}

/// Accumulated expansion-engine telemetry over a sweep — what the space
/// shards did, summed across every build and ladder extension the cache
/// performed (see [`enumerate::ExpandStats`] for the per-pass datum).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExpandTotals {
    /// Engine passes (builds + ladder rungs) that reported stats.
    pub passes: usize,
    /// Worker shards summed over all passes (= passes when serial).
    pub shards: usize,
    /// Milliseconds spent absorbing shard tables and remapping views.
    pub merge_ms: f64,
    /// Peak approximate arena footprint of any single pass, in bytes.
    pub arena_bytes_peak: usize,
}

/// A thread-safe memoizing [`SpaceSource`]; see the module docs.
///
/// Budget-exceeded outcomes are memoized separately (keyed with the budget)
/// so a sweep does not re-attempt a hopeless expansion per analysis.
#[derive(Debug, Default)]
pub struct SpaceCache {
    spaces: Mutex<HashMap<Key, Arc<PrefixSpace>>>,
    failures: Mutex<HashMap<FailKey, enumerate::BudgetExceeded>>,
    hits: AtomicUsize,
    builds: AtomicUsize,
    ladder_hits: AtomicUsize,
    budget_misses: AtomicUsize,
    /// Worker shards per expansion (0 and 1 both mean serial).
    threads: usize,
    expand_passes: AtomicUsize,
    expand_shards: AtomicUsize,
    expand_merge_ns: AtomicU64,
    expand_arena_peak: AtomicUsize,
}

impl SpaceCache {
    /// An empty cache with the serial expansion engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose misses expand under `cfg`'s worker count
    /// (`1` = serial, `0` = all cores; the budget stays per-request).
    /// Spaces are byte-identical for every worker count — the knob trades
    /// CPU for wall clock, never results.
    pub fn with_config(cfg: &ExpandConfig) -> Self {
        SpaceCache { threads: cfg.effective_threads(), ..Self::default() }
    }

    /// Legacy positional form of [`with_config`](Self::with_config).
    #[deprecated(
        since = "0.1.0",
        note = "use `SpaceCache::with_config` with an `ExpandConfig`"
    )]
    pub fn with_threads(threads: usize) -> Self {
        SpaceCache { threads, ..Self::default() }
    }

    /// The configured expansion worker count (`≤ 1` = serial).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The expansion config for one request: the cache's worker count, the
    /// request's budget.
    fn expand_cfg(&self, max_runs: usize) -> ExpandConfig {
        ExpandConfig { threads: self.threads(), max_runs }
    }

    fn record_expand(&self, stats: enumerate::ExpandStats) {
        self.expand_passes.fetch_add(1, Ordering::Relaxed);
        self.expand_shards.fetch_add(stats.shards, Ordering::Relaxed);
        self.expand_merge_ns.fetch_add((stats.merge_ms * 1e6) as u64, Ordering::Relaxed);
        self.expand_arena_peak.fetch_max(stats.arena_bytes, Ordering::Relaxed);
    }

    /// Accumulated expansion telemetry (see [`ExpandTotals`]).
    pub fn expand_totals(&self) -> ExpandTotals {
        ExpandTotals {
            passes: self.expand_passes.load(Ordering::Relaxed),
            shards: self.expand_shards.load(Ordering::Relaxed),
            merge_ms: self.expand_merge_ns.load(Ordering::Relaxed) as f64 / 1e6,
            arena_bytes_peak: self.expand_arena_peak.load(Ordering::Relaxed),
        }
    }

    /// Current counters (`disk_hits` is always zero here; see
    /// [`CacheStats::disk_hits`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            ladder_hits: self.ladder_hits.load(Ordering::Relaxed),
            disk_hits: 0,
            budget_misses: self.budget_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached spaces.
    pub fn len(&self) -> usize {
        self.spaces.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`SpaceSource::space`] plus a flag: `true` if served from the cache.
    ///
    /// # Errors
    /// Returns [`enumerate::BudgetExceeded`] if the expansion exceeds
    /// `max_runs` (the failure is memoized per budget).
    pub fn space_with_meta(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<(Arc<PrefixSpace>, bool), enumerate::BudgetExceeded> {
        let mut span = tracer().span("cache.lookup").with_attr("depth", depth);
        let key: Key = (ma.fingerprint(), values.to_vec(), depth);
        if let Some(space) = self.spaces.lock().expect("cache lock poisoned").get(&key) {
            // A hit may carry a space built under a *larger* budget than
            // this request's; that is fine — budgets bound work, not
            // results, and the cached space is exact.
            self.hits.fetch_add(1, Ordering::Relaxed);
            span.set_attr("outcome", "hit");
            cache_counters().note("hit");
            return Ok((Arc::clone(space), true));
        }
        let fail_key = (key.0, key.1.clone(), key.2, max_runs);
        if let Some(err) = self.failures.lock().expect("cache lock poisoned").get(&fail_key) {
            self.budget_misses.fetch_add(1, Ordering::Relaxed);
            span.set_attr("outcome", "budget-miss");
            cache_counters().note("budget-miss");
            return Err(err.clone());
        }
        // Depth ladder: the deepest cached space for the same
        // (fingerprint, domain) strictly below the requested depth is an
        // exact ancestor — extend it up round-by-round instead of
        // re-expanding from scratch. The per-round budget check of
        // `Expansion::extend` counts the same quantity (runs at the next
        // depth) as the from-scratch pre-count, so budget accounting is
        // preserved.
        let ancestor = {
            let cached = self.spaces.lock().expect("cache lock poisoned");
            (0..depth)
                .rev()
                .find_map(|d| cached.get(&(key.0, key.1.clone(), d)).map(Arc::clone))
        };
        // Build or ladder outside the locks: expansions dominate and must
        // overlap across worker threads. Two workers racing on one key
        // build twice; the loser's space is dropped (counted either way, so
        // the "constructions < scenarios" telemetry stays honest).
        // A ladder budget failure falls through to the from-scratch
        // pre-count below: `extend` reports `needed` at per-run
        // granularity, `expand` at per-sequence-level granularity, and
        // which path a request takes depends on scheduling — so the
        // *canonical* (from-scratch) error is the one recorded and
        // memoized, keeping budget-exceeded JSONL rows deterministic. The
        // pre-count aborts early and interns nothing, so the fallback is
        // cheap.
        let laddered =
            ancestor.and_then(|base| self.ladder(base, ma, values, depth, max_runs).ok());
        match laddered {
            Some(space) => {
                self.ladder_hits.fetch_add(1, Ordering::Relaxed);
                span.set_attr("outcome", "ladder");
                cache_counters().note("ladder");
                Ok((space, false))
            }
            None => {
                match PrefixSpace::expand_budgeted(ma, values, depth, &self.expand_cfg(max_runs)) {
                    Ok(space) => {
                        self.builds.fetch_add(1, Ordering::Relaxed);
                        span.set_attr("outcome", "build");
                        cache_counters().note("build");
                        self.record_expand(space.expand_stats());
                        let space = Arc::new(space);
                        let mut cached = self.spaces.lock().expect("cache lock poisoned");
                        let entry = cached.entry(key).or_insert_with(|| Arc::clone(&space));
                        Ok((Arc::clone(entry), false))
                    }
                    Err(err) => {
                        self.budget_misses.fetch_add(1, Ordering::Relaxed);
                        span.set_attr("outcome", "budget-miss");
                        cache_counters().note("budget-miss");
                        self.failures
                            .lock()
                            .expect("cache lock poisoned")
                            .insert(fail_key, err.clone());
                        Err(err)
                    }
                }
            }
        }
    }

    /// Extend `base` up to `depth` one round at a time (the ladder leg of
    /// a miss). `base` stays cached and intact throughout, and every rung
    /// — intermediate depths included — is inserted into the cache, so a
    /// later request for a shallower depth is a pure hit instead of a
    /// repeat climb. If another worker already cached a rung, its copy
    /// wins and the climb continues from the shared `Arc`.
    fn ladder(
        &self,
        base: Arc<PrefixSpace>,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Arc<PrefixSpace>, enumerate::BudgetExceeded> {
        debug_assert!(base.depth() < depth);
        let mut current = base;
        while current.depth() < depth {
            let next = Arc::new(current.extend_from_budgeted(ma, &self.expand_cfg(max_runs))?);
            self.record_expand(next.expand_stats());
            let rung: Key = (ma.fingerprint(), values.to_vec(), next.depth());
            let mut cached = self.spaces.lock().expect("cache lock poisoned");
            let entry = cached.entry(rung).or_insert_with(|| Arc::clone(&next));
            current = Arc::clone(entry);
        }
        Ok(current)
    }
}

impl SpaceSource for SpaceCache {
    fn space(
        &self,
        ma: &dyn MessageAdversary,
        values: &[Value],
        depth: usize,
        max_runs: usize,
    ) -> Result<Arc<PrefixSpace>, enumerate::BudgetExceeded> {
        self.space_with_meta(ma, values, depth, max_runs).map(|(space, _)| space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adversary::GeneralMA;
    use dyngraph::generators;

    #[test]
    fn second_request_hits() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let (a, cached_a) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let (b, cached_b) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        assert!(!cached_a);
        assert!(cached_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, builds: 1, ..CacheStats::default() });
    }

    #[test]
    fn structurally_equal_adversaries_share() {
        let cache = SpaceCache::new();
        let mut pool = generators::lossy_link_full();
        let a = GeneralMA::oblivious(pool.clone());
        pool.reverse();
        let b = GeneralMA::oblivious(pool);
        cache.space_with_meta(&a, &[0, 1], 1, 1_000_000).unwrap();
        let (_, cached) = cache.space_with_meta(&b, &[0, 1], 1, 1_000_000).unwrap();
        assert!(cached, "same structure must share one slot");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_depths_and_domains_do_not_collide() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
        let (d1, _) = cache.space_with_meta(&ma, &[0, 1], 1, 1_000_000).unwrap();
        let (d2, _) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let (t1, _) = cache.space_with_meta(&ma, &[0, 1, 2], 1, 1_000_000).unwrap();
        assert_eq!(d1.depth(), 1);
        assert_eq!(d2.depth(), 2);
        assert_eq!(t1.values().len(), 3);
        // The depth-2 request ladders off the cached depth-1 space; the
        // ternary domain is a separate key family and builds from scratch.
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.ladder_hits, 1);
    }

    #[test]
    fn miss_with_cached_ancestor_ladders_instead_of_rebuilding() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        assert_eq!(cache.stats(), CacheStats { builds: 1, ..CacheStats::default() });
        // Depth 3 has a depth-2 ancestor: one ladder extension, no build.
        let (s3, cached) = cache.space_with_meta(&ma, &[0, 1], 3, 1_000_000).unwrap();
        assert!(!cached);
        assert_eq!(s3.depth(), 3);
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.ladder_hits), (1, 1));
        // The laddered space is exact: identical stats to a scratch build.
        let direct =
            PrefixSpace::expand(&ma, &[0, 1], 3, &ExpandConfig::with_budget(1_000_000)).unwrap();
        assert_eq!(s3.stats(), direct.stats());
        // Depth 5 ladders two rounds off the cached depth 3 — still one
        // ladder hit, and the ancestor entry survives.
        let (s5, _) = cache.space_with_meta(&ma, &[0, 1], 5, 10_000_000).unwrap();
        assert_eq!(s5.depth(), 5);
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.ladder_hits), (1, 2));
        let (again, cached) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        assert!(cached);
        assert_eq!(again.depth(), 2);
    }

    #[test]
    fn ladder_budget_failure_memoized_and_ancestor_kept() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let (base, _) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        let runs_before = base.runs().len();
        // A depth-4 ladder overruns a tiny budget: budget miss, memoized.
        assert!(cache.space_with_meta(&ma, &[0, 1], 4, 50).is_err());
        assert!(cache.space_with_meta(&ma, &[0, 1], 4, 50).is_err());
        let stats = cache.stats();
        assert_eq!(stats.budget_misses, 2);
        assert_eq!(stats.ladder_hits, 0);
        assert_eq!(stats.builds, 1);
        // The cached ancestor is untouched and still serves hits.
        let (b2, cached) = cache.space_with_meta(&ma, &[0, 1], 2, 1_000_000).unwrap();
        assert!(cached);
        assert_eq!(b2.runs().len(), runs_before);
    }

    #[test]
    fn budget_failures_memoized_per_budget() {
        let cache = SpaceCache::new();
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10).is_err());
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10).is_err());
        let stats = cache.stats();
        assert_eq!(stats.budget_misses, 2);
        assert_eq!(stats.builds, 0);
        // A larger budget is a fresh attempt.
        assert!(cache.space_with_meta(&ma, &[0, 1], 5, 10_000_000).is_ok());
        assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn threaded_cache_serves_identical_spaces_and_counts_shards() {
        let ma = GeneralMA::oblivious(generators::lossy_link_full());
        let serial = SpaceCache::new();
        let threaded = SpaceCache::with_config(&ExpandConfig::new().threads(8));
        for depth in [2, 3] {
            let (a, _) = serial.space_with_meta(&ma, &[0, 1], depth, 1_000_000).unwrap();
            let (b, _) = threaded.space_with_meta(&ma, &[0, 1], depth, 1_000_000).unwrap();
            assert_eq!(a.runs(), b.runs());
            assert_eq!(a.table(), b.table());
            assert_eq!(a.components(), b.components());
        }
        // Same cache trajectory: one build, one ladder extension each.
        assert_eq!(serial.stats(), threaded.stats());
        let totals = threaded.expand_totals();
        assert_eq!(totals.passes, 2);
        assert!(totals.shards > totals.passes, "threaded passes must shard");
        assert_eq!(serial.expand_totals().shards, serial.expand_totals().passes);
    }

    #[test]
    fn core_checker_pulls_through_the_cache() {
        use consensus_core::solvability::SolvabilityChecker;
        let cache = SpaceCache::new();
        let checker =
            SolvabilityChecker::new(GeneralMA::oblivious(generators::lossy_link_reduced()))
                .max_depth(3);
        let first = checker.check_via(&cache);
        assert!(first.is_solvable());
        let builds_after_first = cache.stats().builds;
        let second = checker.check_via(&cache);
        assert!(second.is_solvable());
        assert_eq!(cache.stats().builds, builds_after_first, "warm re-check must build nothing");
    }
}
