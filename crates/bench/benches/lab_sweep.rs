//! Lab sweep benches: the parallel scenario engine end-to-end, the
//! memoization datum of ISSUE 1 (redundant `PrefixSpace` construction
//! eliminated by the shared cache), and the persistence datum of ISSUE 2 —
//! cold vs warm-memory vs warm-disk sweeps, emitted to
//! `BENCH_lab_sweep.json` at the repo root so the perf trajectory
//! accumulates across PRs.

use std::hint::black_box;
use std::time::{Duration, Instant};

use consensus_lab::cache::SpaceCache;
use consensus_lab::json::Value as Json;
use consensus_lab::persist::DiskCache;
use consensus_lab::runner::SweepRunner;
use consensus_lab::scenario::{AnalysisKind, GridBuilder, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BUDGET: usize = 2_000_000;

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

/// Time the three cache temperatures on one grid and write the datum file.
fn emit_bench_json(grid: &[Scenario]) {
    let entries: Vec<(usize, Scenario)> = grid.iter().cloned().enumerate().collect();
    let disk_dir = std::env::temp_dir().join(format!("lab-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);

    // Cold: fresh space cache, populating an empty disk journal.
    let disk = DiskCache::open(&disk_dir).expect("open bench cache dir");
    let cache = SpaceCache::new();
    let t0 = Instant::now();
    let cold = SweepRunner::new().run_indexed(&entries, &cache, Some(&disk));
    let cold_wall = t0.elapsed();

    // Warm memory: same space cache, no disk.
    let t1 = Instant::now();
    let warm_mem = SweepRunner::new().run(grid, &cache);
    let warm_mem_wall = t1.elapsed();
    assert_eq!(warm_mem.cache.builds, cold.cache.builds, "warm pass must build nothing");

    // Warm disk: a new process's view — cold space cache, reloaded journal.
    drop(disk);
    let disk = DiskCache::open(&disk_dir).expect("reopen bench cache dir");
    let t2 = Instant::now();
    let warm_disk = SweepRunner::new().run_indexed(&entries, &SpaceCache::new(), Some(&disk));
    let warm_disk_wall = t2.elapsed();
    assert_eq!(warm_disk.cache.builds, 0, "warm-disk pass must expand nothing");
    let _ = std::fs::remove_dir_all(&disk_dir);

    println!(
        "\n[lab] catalog×depth≤3: {} scenarios, {} prefix-space constructions \
         ({} ladder extensions); cold {:.1?} → warm-memory {:.1?} ({:.2}×) → \
         warm-disk {:.1?} ({:.2}×)\n",
        cold.scenarios,
        cold.cache.builds,
        cold.cache.ladder_hits,
        cold_wall,
        warm_mem_wall,
        cold_wall.as_secs_f64() / warm_mem_wall.as_secs_f64().max(1e-9),
        warm_disk_wall,
        cold_wall.as_secs_f64() / warm_disk_wall.as_secs_f64().max(1e-9),
    );

    let datum = Json::Obj(vec![
        ("bench".into(), Json::Str("lab_sweep".into())),
        ("scenarios".into(), Json::Int(cold.scenarios as i64)),
        ("builds_cold".into(), Json::Int(cold.cache.builds as i64)),
        ("ladder_hits_cold".into(), Json::Int(cold.cache.ladder_hits as i64)),
        ("disk_hits_warm".into(), Json::Int(warm_disk.cache.disk_hits as i64)),
        ("cold_ms".into(), Json::Float(ms(cold_wall))),
        ("warm_memory_ms".into(), Json::Float(ms(warm_mem_wall))),
        ("warm_disk_ms".into(), Json::Float(ms(warm_disk_wall))),
        (
            "speedup_warm_memory".into(),
            Json::Float(cold_wall.as_secs_f64() / warm_mem_wall.as_secs_f64().max(1e-9)),
        ),
        (
            "speedup_warm_disk".into(),
            Json::Float(cold_wall.as_secs_f64() / warm_disk_wall.as_secs_f64().max(1e-9)),
        ),
    ]);
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lab_sweep.json").to_string()
    });
    match std::fs::write(&out, format!("{datum}\n")) {
        Ok(()) => println!("[lab] wrote {out}"),
        Err(e) => eprintln!("[lab] could not write {out}: {e}"),
    }
}

fn bench_lab_sweep(c: &mut Criterion) {
    // Datum: construction sharing and the cold → warm-memory → warm-disk
    // trajectory on the full catalog grid at depth 3.
    let grid = GridBuilder::new(3, BUDGET).over_catalog();
    emit_bench_json(&grid);

    // The engine end-to-end: cold, warm in-memory, warm on-disk.
    let mut group = c.benchmark_group("lab/catalog_sweep");
    group.sample_size(10);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let cache = SpaceCache::new();
            black_box(SweepRunner::new().run(&grid, &cache).scenarios)
        })
    });
    let shared = SpaceCache::new();
    SweepRunner::new().run(&grid, &shared); // pre-warm
    group.bench_function("warm_memory", |b| {
        b.iter(|| black_box(SweepRunner::new().run(&grid, &shared).scenarios))
    });
    let entries: Vec<(usize, Scenario)> = grid.iter().cloned().enumerate().collect();
    let disk_dir = std::env::temp_dir().join(format!("lab-bench-group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    {
        let disk = DiskCache::open(&disk_dir).expect("open bench cache dir");
        SweepRunner::new().run_indexed(&entries, &SpaceCache::new(), Some(&disk));
        // pre-warm
    }
    group.bench_function("warm_disk", |b| {
        b.iter(|| {
            // A fresh DiskCache per iteration models the new-process read
            // path (journal reload included); the space cache stays cold.
            let disk = DiskCache::open(&disk_dir).expect("reopen bench cache dir");
            black_box(
                SweepRunner::new()
                    .run_indexed(&entries, &SpaceCache::new(), Some(&disk))
                    .scenarios,
            )
        })
    });
    let _ = std::fs::remove_dir_all(&disk_dir);
    group.finish();

    // Scaling in the analysis dimension: with the cache, adding analyses to
    // a sweep costs the analysis, not the expansion.
    let mut group = c.benchmark_group("lab/analysis_scaling");
    group.sample_size(10);
    for kinds in [
        &[AnalysisKind::ComponentStats][..],
        &[
            AnalysisKind::Solvability,
            AnalysisKind::Bivalence,
            AnalysisKind::Broadcastability,
            AnalysisKind::ComponentStats,
            AnalysisKind::SimCheck,
        ][..],
    ] {
        let grid = GridBuilder::new(3, BUDGET).analyses(kinds).over_catalog();
        group.bench_with_input(BenchmarkId::from_parameter(kinds.len()), &grid, |b, grid| {
            b.iter(|| {
                let cache = SpaceCache::new();
                black_box(SweepRunner::new().run(grid, &cache).cache.builds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lab_sweep);
criterion_main!(benches);
