//! Lab sweep benches: the parallel scenario engine end-to-end, and the
//! perf datum of ISSUE 1 — redundant `PrefixSpace` construction eliminated
//! by the shared memoization cache.
//!
//! The printed header quantifies the sharing: a full catalog sweep's
//! construction count vs its scenario count, and the wall-clock ratio of a
//! cold sweep (fresh cache) to a warm one (all spaces cached).

use std::hint::black_box;
use std::time::Instant;

use consensus_lab::cache::SpaceCache;
use consensus_lab::runner::SweepRunner;
use consensus_lab::scenario::{AnalysisKind, GridBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BUDGET: usize = 2_000_000;

fn bench_lab_sweep(c: &mut Criterion) {
    // Datum: construction sharing and the cold→warm speedup on the full
    // catalog grid at depth 3.
    let grid = GridBuilder::new(3, BUDGET).over_catalog();
    let cache = SpaceCache::new();
    let t0 = Instant::now();
    let cold = SweepRunner::new().run(&grid, &cache);
    let cold_wall = t0.elapsed();
    let t1 = Instant::now();
    let warm = SweepRunner::new().run(&grid, &cache);
    let warm_wall = t1.elapsed();
    assert_eq!(warm.cache.builds, cold.cache.builds, "warm pass must build nothing");
    println!(
        "\n[lab] catalog×depth≤3: {} scenarios, {} prefix-space constructions \
         ({} shared); cold {:.1?} → warm {:.1?} ({:.2}× speedup)\n",
        cold.scenarios,
        cold.cache.builds,
        cold.scenarios - cold.cache.builds,
        cold_wall,
        warm_wall,
        cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9),
    );

    // The engine end-to-end, cold vs warm cache.
    let mut group = c.benchmark_group("lab/catalog_sweep");
    group.sample_size(10);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let cache = SpaceCache::new();
            black_box(SweepRunner::new().run(&grid, &cache).scenarios)
        })
    });
    let shared = SpaceCache::new();
    SweepRunner::new().run(&grid, &shared); // pre-warm
    group.bench_function("warm_cache", |b| {
        b.iter(|| black_box(SweepRunner::new().run(&grid, &shared).scenarios))
    });
    group.finish();

    // Scaling in the analysis dimension: with the cache, adding analyses to
    // a sweep costs the analysis, not the expansion.
    let mut group = c.benchmark_group("lab/analysis_scaling");
    group.sample_size(10);
    for kinds in [
        &[AnalysisKind::ComponentStats][..],
        &[
            AnalysisKind::Solvability,
            AnalysisKind::Bivalence,
            AnalysisKind::Broadcastability,
            AnalysisKind::ComponentStats,
            AnalysisKind::SimCheck,
        ][..],
    ] {
        let grid = GridBuilder::new(3, BUDGET).analyses(kinds).over_catalog();
        group.bench_with_input(BenchmarkId::from_parameter(kinds.len()), &grid, |b, grid| {
            b.iter(|| {
                let cache = SpaceCache::new();
                black_box(SweepRunner::new().run(grid, &cache).cache.builds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lab_sweep);
criterion_main!(benches);
