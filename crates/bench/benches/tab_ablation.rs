//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. union-find component computation vs the paper-literal ε-ball BFS of
//!    Definition 6.2;
//! 2. early-decision tables vs full-depth-only decisions (decision latency
//!    in rounds is printed; wall-clock cost of synthesis measured);
//! 3. the checker's exact-chain pre-phase vs plain depth sweeping.

use adversary::GeneralMA;
use benches::{full_lossy_link, reduced_lossy_link};
use consensus_core::{ablation, solvability::SolvabilityChecker, space::PrefixSpace, ExpandConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{Digraph, GraphSeq};
use simulator::engine;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    // Ablation 2 datum: decision rounds, early vs full-depth.
    let ma = reduced_lossy_link();
    let space =
        PrefixSpace::expand(&ma, &[0, 1], 3, &ExpandConfig::with_budget(4_000_000)).unwrap();
    let early = consensus_core::UniversalAlgorithm::synthesize(&space).unwrap();
    let late = ablation::FullDepthAlgorithm::synthesize(&space).unwrap();
    let seq = GraphSeq::parse2("-> <- ->").unwrap();
    let re = engine::run(&early, &[1, 1], &seq).decision_of(0).unwrap().0;
    let rl = engine::run(&late, &[1, 1], &seq).decision_of(0).unwrap().0;
    println!("\n[ablation] decision round on (1,1) under '-> <- ->': early-table {re}, full-depth {rl}\n");

    // Ablation 1: components.
    let mut group = c.benchmark_group("ablation/components");
    group.sample_size(10);
    for depth in [2usize, 4] {
        let space_full = PrefixSpace::expand(
            &full_lossy_link(),
            &[0, 1],
            depth,
            &ExpandConfig::with_budget(10_000_000),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("ball_bfs", depth), &space_full, |b, space| {
            b.iter(|| black_box(ablation::components_by_ball_bfs(space)))
        });
        group.bench_with_input(
            BenchmarkId::new("union_find", depth),
            &full_lossy_link(),
            |b, ma| {
                b.iter(|| {
                    let cfg = ExpandConfig::with_budget(10_000_000);
                    let s = PrefixSpace::expand(ma, &[0, 1], depth, &cfg).unwrap();
                    black_box(s.components().count())
                })
            },
        );
    }
    group.finish();

    // Ablation 2: synthesis cost.
    let mut group = c.benchmark_group("ablation/synthesis");
    group.sample_size(10);
    group.bench_function("early_tables", |b| {
        b.iter(|| {
            black_box(consensus_core::UniversalAlgorithm::synthesize(&space).unwrap().table_size())
        })
    });
    group.bench_function("full_depth_tables", |b| {
        b.iter(|| black_box(ablation::FullDepthAlgorithm::synthesize(&space).is_some()))
    });
    group.finish();

    // Ablation 3: exact-chain phase on the empty-pool adversary (where it
    // pays off) vs the plain sweep that can never conclude.
    let mut group = c.benchmark_group("ablation/checker_phases");
    group.sample_size(10);
    let empty_pool = GeneralMA::oblivious(vec![Digraph::empty(2)]);
    group.bench_function("with_exact_phase", |b| {
        b.iter(|| {
            black_box(
                SolvabilityChecker::new(empty_pool.clone()).max_depth(3).check().is_unsolvable(),
            )
        })
    });
    group.bench_function("sweep_only", |b| {
        b.iter(|| {
            black_box(ablation::check_without_exact_phase(&empty_pool, &[0, 1], 3, 1_000_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
