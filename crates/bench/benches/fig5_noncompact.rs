//! F5 / T5 — Figure 5 and Theorem 6.7: non-compact adversaries — touching
//! decision classes and excluded limits.
//!
//! Regenerates the Fig. 5 datum (the non-compact ◇stable(2) classes touch
//! at every resolution; its excluded limit sequences carry convergent
//! witness families) and measures excluded-limit enumeration and the
//! compact-approximation checker sweep that realizes the [23] window
//! threshold (stable(1) mixed vs stable(2) solvable).

use adversary::{limit, GeneralMA};
use consensus_core::solvability::SolvabilityChecker;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::generators;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let nc = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    let excluded = limit::excluded_limits(&nc, 0, 2, 3);
    println!("\n[F5] ◇stable(2): {} excluded cycle-2 limits, e.g.:", excluded.len());
    for ex in excluded.iter().take(3) {
        println!("[F5]   {}  (witnesses: {})", ex.limit, ex.witnesses.len());
    }
    for k in [1usize, 2] {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), k, Some(3));
        let verdict = SolvabilityChecker::new(ma).max_depth(5).max_runs(4_000_000).check();
        println!(
            "[F5] stable({k}) by round 3: {}",
            if verdict.is_solvable() {
                "SOLVABLE"
            } else {
                "mixed/undecided"
            }
        );
    }
    println!();

    let mut group = c.benchmark_group("fig5/excluded_limits");
    for cycle in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(cycle), &cycle, |b, &cycle| {
            b.iter(|| black_box(limit::excluded_limits(&nc, 0, cycle, 3).len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig5/deadline_checker_sweep");
    group.sample_size(10);
    for r in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, Some(r));
                let verdict =
                    SolvabilityChecker::new(ma).max_depth(r + 2).max_runs(4_000_000).check();
                black_box(verdict.is_solvable())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
