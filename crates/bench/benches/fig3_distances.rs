//! F3 — Figure 3: the `d_P` / `d_min` / `d_max` distance computations.
//!
//! Regenerates the paper's Fig. 3 values (`d_max = d_{3} = 1`,
//! `d_{2} = 1/2`, `d_min = d_{1} = 1/4`, in the paper's 1-based process
//! numbering) and measures distance evaluation over random run pairs as the
//! horizon grows, plus the exact lasso divergence analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{generators, GraphSeq, Lasso};
use ptgraph::{contamination, distance, InfiniteRun, PrefixRun, ViewTable};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    // Regenerate the figure's values once.
    let (alpha, beta, _) = distance::fig3_example();
    println!("\n[F3] regenerated Figure 3 distances:");
    for p in (0..3).rev() {
        println!(
            "[F3]   d_{{{}}}(α,β) = {}",
            p + 1, // paper numbering
            distance::d_p(&alpha, &beta, p).as_f64()
        );
    }
    println!("[F3]   d_max = {}", distance::d_max(&alpha, &beta).as_f64());
    println!("[F3]   d_min = {}\n", distance::d_min(&alpha, &beta).as_f64());

    c.bench_function("fig3/exact_example", |b| {
        b.iter(|| {
            let (a, bb, _) = distance::fig3_example();
            black_box((distance::d_min(&a, &bb), distance::d_max(&a, &bb)))
        })
    });

    let mut group = c.benchmark_group("fig3/dmin_over_horizon");
    for t in [4usize, 16, 64, 256] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut table = ViewTable::new(3);
        let mk = |rng: &mut rand::rngs::StdRng, table: &mut ViewTable| {
            let graphs: Vec<_> = (0..t).map(|_| generators::random_graph(rng, 3, 0.4)).collect();
            PrefixRun::compute(vec![0, 1, 0], &GraphSeq::from_graphs(graphs), table)
        };
        let a = mk(&mut rng, &mut table);
        let b = mk(&mut rng, &mut table);
        group.bench_with_input(BenchmarkId::from_parameter(t), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(distance::d_min(a, b)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3/exact_lasso_divergence");
    for cycle in [1usize, 4, 16] {
        let la = Lasso::new(GraphSeq::new(), GraphSeq::parse2(&"-> ".repeat(cycle)).unwrap());
        let lb = Lasso::new(GraphSeq::new(), GraphSeq::parse2(&"<- ".repeat(cycle)).unwrap());
        let a = InfiniteRun::new(vec![0, 1], la);
        let b = InfiniteRun::new(vec![0, 1], lb);
        group.bench_with_input(BenchmarkId::from_parameter(cycle), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(contamination::analyze_infinite(a, b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
