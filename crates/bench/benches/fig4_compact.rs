//! F4 / T4 — Figure 4 and Theorem 6.6: compact adversaries' component
//! structure across ε-resolutions.
//!
//! Regenerates the Fig. 4 datum — for a solvable compact adversary the
//! decision classes are separated with positive distance; prints the first
//! separating ε (Theorem 6.6) — and measures the prefix-space expansion +
//! component computation as depth grows.

use benches::{full_lossy_link, reduced_lossy_link, stars3};
use consensus_core::{analysis, space::PrefixSpace, ExpandConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    // Regenerate the figure's qualitative content once.
    println!("\n[F4] reduced lossy link {{←, →}} (solvable):");
    for rep in analysis::depth_sweep(&reduced_lossy_link(), &[0, 1], 4, 2_000_000) {
        println!(
            "[F4]   depth {}: {} components, separated: {}, class distance: {}",
            rep.depth,
            rep.components.len(),
            rep.separated,
            rep.min_class_distance.map(|d| d.as_f64()).unwrap_or(f64::NAN)
        );
    }
    println!("[F4] full lossy link {{←, ↔, →}} (unsolvable — classes never split):");
    for rep in analysis::depth_sweep(&full_lossy_link(), &[0, 1], 4, 2_000_000) {
        println!(
            "[F4]   depth {}: {} components, {} mixed",
            rep.depth,
            rep.components.len(),
            rep.mixed_count()
        );
    }
    println!();

    let mut group = c.benchmark_group("fig4/expand_and_components");
    group.sample_size(10);
    for depth in [2usize, 4, 6] {
        for (name, ma) in [("reduced", reduced_lossy_link()), ("full", full_lossy_link())] {
            group.bench_with_input(
                BenchmarkId::new(name, depth),
                &(ma, depth),
                |b, (ma, depth)| {
                    b.iter(|| {
                        let cfg = ExpandConfig::with_budget(10_000_000);
                        let space = PrefixSpace::expand(ma, &[0, 1], *depth, &cfg).unwrap();
                        black_box(space.components().count())
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig4/broadcast_report");
    group.sample_size(10);
    for depth in [2usize, 4] {
        let space =
            PrefixSpace::expand(&stars3(), &[0, 1], depth, &ExpandConfig::with_budget(10_000_000))
                .unwrap();
        group.bench_with_input(BenchmarkId::new("stars3", depth), &space, |b, space| {
            b.iter(|| black_box(consensus_core::broadcast::broadcast_report(space)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
