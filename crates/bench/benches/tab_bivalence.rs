//! T9 — bivalence constructions and the fair-sequence machinery.
//!
//! Regenerates the §6.1 datum (an obstruction run for a would-be algorithm
//! under the lossy link; no obstruction for the universal algorithm on the
//! solvable pool) and measures the obstruction-run construction, the
//! per-depth ε-chain extraction, and the exact distance-0 chain search.

use adversary::GeneralMA;
use consensus_core::{bivalence, fair, space::PrefixSpace, ExpandConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{generators, Digraph};
use simulator::algorithms::FloodMin;
use std::hint::black_box;

fn bench_bivalence(c: &mut Criterion) {
    let full = GeneralMA::oblivious(generators::lossy_link_full());
    let run = bivalence::bivalent_run(&FloodMin::new(4), &full, &[0, 1], 3, 2)
        .expect("obstruction exists");
    println!(
        "\n[T9] obstruction run for FloodMin(4) under {{←, ↔, →}}: inputs {:?}, rounds {}\n",
        run.inputs,
        run.seq().rounds()
    );

    let mut group = c.benchmark_group("tab_bivalence/obstruction_run");
    group.sample_size(10);
    for rounds in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                black_box(
                    bivalence::bivalent_run(&FloodMin::new(4), &full, &[0, 1], rounds, 2).is_some(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tab_bivalence/epsilon_chain");
    group.sample_size(10);
    for depth in [2usize, 3, 4] {
        let space =
            PrefixSpace::expand(&full, &[0, 1], depth, &ExpandConfig::with_budget(4_000_000))
                .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &space, |b, space| {
            b.iter(|| black_box(fair::valence_chain(space, 0, 1).unwrap().links.len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tab_bivalence/exact_chain_search");
    group.bench_function("empty_pool_found", |b| {
        let ma = GeneralMA::oblivious(vec![Digraph::empty(2)]);
        b.iter(|| black_box(fair::exact_zero_chain(&ma, 0, 1, 2).is_some()))
    });
    group.bench_function("rooted_pool_absent", |b| {
        b.iter(|| black_box(fair::exact_zero_chain(&full, 0, 1, 3).is_none()))
    });
    group.finish();
}

criterion_group!(benches, bench_bivalence);
criterion_main!(benches);
