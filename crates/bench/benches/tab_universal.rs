//! T2 — the universal algorithm versus hand-written baselines.
//!
//! Regenerates the §6.1 datum — the synthesized universal algorithm for
//! `{←, →}` decides in one round, like the literature's direction rule —
//! and measures synthesis cost and per-run decision latency against the
//! `DirectionRule` and `FloodMin` baselines.

use adversary::GeneralMA;
use consensus_core::{space::PrefixSpace, universal::UniversalAlgorithm, ExpandConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{generators, GraphSeq};
use simulator::{algorithms, engine};
use std::hint::black_box;

fn bench_universal(c: &mut Criterion) {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let space = PrefixSpace::expand(&ma, &[0, 1], 2, &ExpandConfig::default()).unwrap();
    let universal = UniversalAlgorithm::synthesize(&space).unwrap();
    let seq = GraphSeq::parse2("-> <- -> <- -> <-").unwrap();

    let exec = engine::run(&universal, &[0, 1], &seq);
    println!(
        "\n[T2] universal algorithm on {{←, →}}: decides in round {} (direction rule: round 1)\n",
        exec.decision_of(0).unwrap().0.max(exec.decision_of(1).unwrap().0)
    );

    let mut group = c.benchmark_group("tab_universal/synthesis");
    group.sample_size(10);
    for depth in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let space =
                    PrefixSpace::expand(&ma, &[0, 1], depth, &ExpandConfig::with_budget(4_000_000))
                        .unwrap();
                black_box(UniversalAlgorithm::synthesize(&space).unwrap().table_size())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tab_universal/decision_latency");
    group.bench_function("universal", |b| {
        b.iter(|| black_box(engine::run(&universal, &[0, 1], &seq).consensus_value()))
    });
    group.bench_function("direction_rule", |b| {
        b.iter(|| {
            black_box(engine::run(&algorithms::DirectionRule, &[0, 1], &seq).consensus_value())
        })
    });
    group.bench_function("floodmin", |b| {
        b.iter(|| {
            black_box(engine::run(&algorithms::FloodMin::new(2), &[0, 1], &seq).consensus_value())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_universal);
criterion_main!(benches);
