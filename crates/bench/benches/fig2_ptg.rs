//! F2 — Figure 2: process-time graph construction and view extraction.
//!
//! Regenerates the paper's Fig. 2 object (the `n = 3`, `t = 2` process-time
//! graph with process 1's view highlighted) and measures PT-graph
//! construction, causal-past extraction, and view interning as `n` and `t`
//! scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{generators, GraphSeq};
use ptgraph::{fig2_example, PrefixRun, PtGraph, ViewTable};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    // Print the regenerated figure once.
    let pt = fig2_example();
    println!("\n[F2] regenerated Figure 2:\n{}", pt.render_ascii());
    println!("[F2] view of p0 at t=2: {:?}\n", pt.causal_past(&[0], 2));

    c.bench_function("fig2/construct_exact", |b| b.iter(|| black_box(fig2_example())));

    let mut group = c.benchmark_group("fig2/causal_past");
    for (n, t) in [(3usize, 2usize), (4, 8), (6, 16), (8, 32)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let graphs: Vec<_> = (0..t).map(|_| generators::random_graph(&mut rng, n, 0.3)).collect();
        let pt = PtGraph::new(vec![0; n], GraphSeq::from_graphs(graphs));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &pt, |b, pt| {
            b.iter(|| black_box(pt.causal_past(&[0], pt.t_max())))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig2/view_interning");
    for (n, t) in [(3usize, 8usize), (5, 16), (8, 24)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let graphs: Vec<_> = (0..t).map(|_| generators::random_graph(&mut rng, n, 0.3)).collect();
        let seq = GraphSeq::from_graphs(graphs);
        let inputs: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(inputs, seq),
            |b, (inputs, seq)| {
                b.iter(|| {
                    let mut table = ViewTable::new(inputs.len());
                    black_box(PrefixRun::compute(inputs.clone(), seq, &mut table))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
