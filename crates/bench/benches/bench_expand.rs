//! Expansion-engine benches — the parallel/arena datum of ISSUE 3: cold
//! serial vs cold sharded expansion vs the one-round ladder, at depths
//! 1–5 over the whole adversary catalog, emitted to `BENCH_expand.json`
//! at the repo root so the perf trajectory accumulates across PRs.
//!
//! Every measured pass is also checked byte-identical to the serial
//! engine (same runs, same interned view ids) — a bench that drifted
//! from the equivalence contract would be measuring a different machine.

use std::hint::black_box;
use std::time::{Duration, Instant};

use adversary::enumerate::{expand, expand_with, Expansion};
use adversary::{catalog, DynMA};
use consensus_lab::json::Value as Json;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BUDGET: usize = 2_000_000;
const DEPTHS: std::ops::RangeInclusive<usize> = 1..=5;
const VALUES: &[u32] = &[0, 1];
/// Timed repetitions per (adversary, depth) — summed, so the emitted
/// totals are stable enough for the CI regression gate's tolerance.
const REPS: usize = 5;

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

/// Worker count for the sharded engine: all available cores, floored at 2
/// so the shard/merge machinery is always the thing measured (on a 1-core
/// box the datum then records the sharding overhead honestly instead of
/// silently re-measuring the serial path).
fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2)
}

/// The catalog adversaries, deduplicated by structural fingerprint (e.g.
/// `all-rooted-2` aliases `sw-lossy-link` — benching it twice would just
/// double-count the same expansion).
fn distinct_catalog() -> Vec<DynMA> {
    let mut seen = std::collections::HashSet::new();
    catalog::entries()
        .iter()
        .map(|e| e.build())
        .filter(|ma| seen.insert(adversary::MessageAdversary::fingerprint(ma)))
        .collect()
}

struct DepthDatum {
    depth: usize,
    adversaries: usize,
    skipped_budget: usize,
    runs: usize,
    views: usize,
    serial_ms: f64,
    parallel_ms: f64,
    ladder_ms: f64,
}

/// Measure one depth across the catalog: cold serial, cold parallel (and
/// equivalence), and the one-round ladder extension from depth − 1.
fn measure_depth(pool: &[DynMA], depth: usize, threads: usize) -> DepthDatum {
    let mut datum = DepthDatum {
        depth,
        adversaries: 0,
        skipped_budget: 0,
        runs: 0,
        views: 0,
        serial_ms: 0.0,
        parallel_ms: 0.0,
        ladder_ms: 0.0,
    };
    for ma in pool {
        // The first rep doubles as the budget probe: its timing is only
        // recorded if the expansion fits.
        let t0 = Instant::now();
        let mut serial = match expand(ma, VALUES, depth, BUDGET) {
            Ok(e) => e,
            Err(_) => {
                datum.skipped_budget += 1;
                continue;
            }
        };
        for _ in 1..REPS {
            serial = expand(ma, VALUES, depth, BUDGET).expect("first rep fit the budget");
        }
        datum.serial_ms += ms(t0.elapsed());
        datum.adversaries += 1;
        datum.runs += serial.runs.len();
        datum.views += serial.table.len();

        let t1 = Instant::now();
        let mut parallel = None;
        for _ in 0..REPS {
            parallel = Some(
                expand_with(ma, VALUES, depth, BUDGET, threads).expect("serial fit the budget"),
            );
        }
        let parallel = parallel.expect("REPS >= 1");
        datum.parallel_ms += ms(t1.elapsed());
        assert_eq!(parallel.runs, serial.runs, "parallel expansion must be byte-identical");
        assert_eq!(parallel.table, serial.table, "parallel interning must be byte-identical");

        let base: Expansion = expand(ma, VALUES, depth - 1, BUDGET).expect("shallower fits");
        let t2 = Instant::now();
        let mut laddered = base.clone();
        for rep in 0..REPS {
            let mut e = base.clone();
            e.extend_with(ma, BUDGET, threads).expect("extension fits the budget");
            if rep == REPS - 1 {
                laddered = e;
            }
        }
        datum.ladder_ms += ms(t2.elapsed());
        // The ladder reuses the shallower table, so view ids are permuted
        // relative to a scratch build; runs, sequences, and distinct-view
        // counts must still agree exactly.
        assert_eq!(laddered.runs.len(), serial.runs.len(), "ladder run count diverged");
        assert_eq!(laddered.table.len(), serial.table.len(), "ladder view count diverged");
        for (a, b) in laddered.runs.iter().zip(&serial.runs) {
            assert_eq!((a.inputs(), a.seq()), (b.inputs(), b.seq()), "ladder run order diverged");
        }
    }
    datum
}

fn emit_bench_json(pool: &[DynMA], threads: usize) {
    let mut per_depth = Vec::new();
    let (mut serial_total, mut parallel_total, mut ladder_total) = (0.0f64, 0.0f64, 0.0f64);
    let (mut runs_total, mut views_total) = (0usize, 0usize);
    for depth in DEPTHS {
        let d = measure_depth(pool, depth, threads);
        println!(
            "[expand] depth {}: {} adversaries ({} over budget), {} runs, {} views; \
             serial {:.1} ms, parallel({} workers) {:.1} ms ({:.2}×), ladder {:.1} ms",
            d.depth,
            d.adversaries,
            d.skipped_budget,
            d.runs,
            d.views,
            d.serial_ms,
            threads,
            d.parallel_ms,
            d.serial_ms / d.parallel_ms.max(1e-9),
            d.ladder_ms,
        );
        serial_total += d.serial_ms;
        parallel_total += d.parallel_ms;
        ladder_total += d.ladder_ms;
        runs_total += d.runs;
        views_total += d.views;
        per_depth.push(Json::Obj(vec![
            ("depth".into(), Json::Int(d.depth as i64)),
            ("adversaries".into(), Json::Int(d.adversaries as i64)),
            ("skipped_budget".into(), Json::Int(d.skipped_budget as i64)),
            ("runs".into(), Json::Int(d.runs as i64)),
            ("views".into(), Json::Int(d.views as i64)),
            ("serial_ms".into(), Json::Float(d.serial_ms)),
            ("parallel_ms".into(), Json::Float(d.parallel_ms)),
            ("ladder_ms".into(), Json::Float(d.ladder_ms)),
        ]));
    }
    let datum = Json::Obj(vec![
        ("bench".into(), Json::Str("expand".into())),
        ("threads".into(), Json::Int(threads as i64)),
        ("adversaries".into(), Json::Int(pool.len() as i64)),
        ("runs".into(), Json::Int(runs_total as i64)),
        ("views".into(), Json::Int(views_total as i64)),
        ("cold_serial_ms".into(), Json::Float(serial_total)),
        ("cold_parallel_ms".into(), Json::Float(parallel_total)),
        ("ladder_ms".into(), Json::Float(ladder_total)),
        ("speedup_parallel".into(), Json::Float(serial_total / parallel_total.max(1e-9))),
        ("per_depth".into(), Json::Arr(per_depth)),
    ]);
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_expand.json").to_string()
    });
    match std::fs::write(&out, format!("{datum}\n")) {
        Ok(()) => println!("[expand] wrote {out}"),
        Err(e) => eprintln!("[expand] could not write {out}: {e}"),
    }
}

fn bench_expand(c: &mut Criterion) {
    let pool = distinct_catalog();
    let threads = workers();
    emit_bench_json(&pool, threads);

    // Criterion groups on one representative heavy entry (the full lossy
    // link, the densest n = 2 branching) — serial vs sharded vs ladder.
    let ma = catalog::by_name("sw-lossy-link").expect("catalog entry").build();
    let mut group = c.benchmark_group("expand/sw-lossy-link");
    group.sample_size(10);
    for depth in [4usize, 5] {
        group.bench_with_input(BenchmarkId::new("serial", depth), &depth, |b, &d| {
            b.iter(|| black_box(expand(&ma, VALUES, d, BUDGET).unwrap().runs.len()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", depth), &depth, |b, &d| {
            b.iter(|| black_box(expand_with(&ma, VALUES, d, BUDGET, threads).unwrap().runs.len()))
        });
        let base = expand(&ma, VALUES, depth - 1, BUDGET).unwrap();
        group.bench_with_input(BenchmarkId::new("ladder", depth), &depth, |b, _| {
            b.iter(|| {
                let mut e = base.clone();
                e.extend_with(&ma, BUDGET, threads).unwrap();
                black_box(e.runs.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expand);
criterion_main!(benches);
