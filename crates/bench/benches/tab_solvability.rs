//! T1 / T8 — the solvability table: the checker's verdicts across all
//! `n = 2` oblivious pools and structured `n = 3` families.
//!
//! Regenerates the ground-truth table (matching [8, 21]) and measures the
//! full checker (exact-chain phase + depth sweep + synthesis +
//! verification) per family.

use adversary::GeneralMA;
use consensus_core::{baselines, solvability::SolvabilityChecker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::{generators, Digraph};
use std::hint::black_box;

fn verdict_tag(v: &consensus_core::solvability::Verdict) -> &'static str {
    use consensus_core::solvability::Verdict::*;
    match v {
        Solvable(_) => "SOLVABLE",
        Unsolvable(_) => "UNSOLVABLE (exact)",
        Undecided(_) => "mixed (limit-only impossibility)",
    }
}

fn bench_solvability(c: &mut Criterion) {
    // Regenerate the n = 2 table once.
    println!("\n[T8] all 15 oblivious pools on n = 2 (checker vs kernel criterion [8]):");
    let all: Vec<Digraph> = generators::all_graphs(2).collect();
    for bits in 1u32..16 {
        let pool: Vec<Digraph> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, g)| g.clone())
            .collect();
        let names: Vec<String> = pool.iter().map(|g| g.to_string()).collect();
        let kernel = baselines::kernel_beta_solvable_n2(&pool);
        let verdict = SolvabilityChecker::new(GeneralMA::oblivious(pool)).max_depth(4).check();
        println!(
            "[T8]   {{{}}}: checker = {}, kernel criterion = {}",
            names.join(", "),
            verdict_tag(&verdict),
            if kernel { "solvable" } else { "unsolvable" }
        );
    }
    println!();

    let mut group = c.benchmark_group("tab_solvability/checker");
    group.sample_size(10);
    let families: Vec<(&str, GeneralMA)> = vec![
        ("reduced_lossy_link", GeneralMA::oblivious(generators::lossy_link_reduced())),
        ("full_lossy_link", GeneralMA::oblivious(generators::lossy_link_full())),
        ("empty_pool", GeneralMA::oblivious(vec![Digraph::empty(2)])),
        ("stars3", GeneralMA::oblivious(generators::all_out_stars(3))),
        (
            "eventually_swap_by2",
            GeneralMA::eventually_graph(
                generators::lossy_link_full(),
                Digraph::parse2("<->").unwrap(),
                Some(2),
            ),
        ),
    ];
    for (name, ma) in &families {
        group.bench_with_input(BenchmarkId::from_parameter(*name), ma, |b, ma| {
            b.iter(|| {
                let verdict =
                    SolvabilityChecker::new(ma.clone()).max_depth(4).max_runs(4_000_000).check();
                black_box(verdict.is_solvable())
            })
        });
    }
    group.finish();

    // The kernel criterion alone (the [8] baseline) for comparison.
    let mut group = c.benchmark_group("tab_solvability/kernel_baseline");
    group.bench_function("all_15_pools", |b| {
        b.iter(|| {
            let mut count = 0;
            for bits in 1u32..16 {
                let pool: Vec<Digraph> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bits & (1 << i) != 0)
                    .map(|(_, g)| g.clone())
                    .collect();
                if baselines::kernel_beta_solvable_n2(&pool) {
                    count += 1;
                }
            }
            black_box(count)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvability);
criterion_main!(benches);
