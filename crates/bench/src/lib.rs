//! Shared benchmark helpers.
//!
//! Each bench target regenerates one paper figure/table (DESIGN.md §5):
//! the harness prints the qualitative datum the paper reports (who
//! separates, who stays mixed, at which depth) and measures how expensive
//! the regeneration is.

use adversary::GeneralMA;
use dyngraph::generators;

/// The Santoro–Widmayer lossy link (unsolvable, Fig. 4/5 contrast).
pub fn full_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_full())
}

/// The reduced lossy link (solvable at depth 1).
pub fn reduced_lossy_link() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_reduced())
}

/// The n = 3 out-star adversary (solvable).
pub fn stars3() -> GeneralMA {
    GeneralMA::oblivious(generators::all_out_stars(3))
}
