//! Disjoint-set forest with union by rank and path halving.

/// A union-find structure over points `0 … len−1`.
///
/// ```
/// use topology::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert_eq!(uf.component_count(), 4);
/// uf.union(0, 2);
/// assert!(uf.same(0, 2));
/// assert!(!uf.same(0, 1));
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind { parent: (0..len).collect(), rank: vec![0; len], components: len }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// The representative of `i`'s set (with path halving).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_disjoint() {
        let mut uf = UnionFind::new(5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(uf.same(i, j), i == j);
            }
        }
    }

    #[test]
    fn union_reduces_count() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.component_count(), 3);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(1, 2));
    }

    #[test]
    fn transitivity() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        assert!(uf.same(0, 9));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
