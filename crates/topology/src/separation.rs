//! Separation and labeling utilities on component partitions.
//!
//! The paper's solvability characterizations reduce to questions about a
//! labeled component partition: are the label classes *separated* (no
//! component mixes two labels — Corollary 5.6), and how do labels extend to
//! unlabeled components (the meta-procedure after Theorem 5.5)?

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::Components;

/// The labeling outcome of one component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentLabel<L> {
    /// No labeled point in the component (free to assign any value —
    /// meta-procedure step 3).
    Unlabeled,
    /// All labeled points agree on `L`.
    Pure(L),
    /// The component contains at least two distinct labels — a separation
    /// failure (Corollary 5.6 verdict: consensus impossible at this
    /// resolution).
    Mixed(Vec<L>),
}

impl<L> ComponentLabel<L> {
    /// Whether the component is mixed.
    pub fn is_mixed(&self) -> bool {
        matches!(self, ComponentLabel::Mixed(_))
    }
}

/// Per-component labels for a partial labeling of the points.
///
/// `labels` assigns labels to *some* points (e.g. the `v`-valent runs get
/// label `v`); the result classifies every component.
pub fn label_components<L: Clone + Eq + std::hash::Hash>(
    comps: &Components,
    labels: &HashMap<usize, L>,
) -> Vec<ComponentLabel<L>> {
    let mut out: Vec<ComponentLabel<L>> =
        (0..comps.count()).map(|_| ComponentLabel::Unlabeled).collect();
    let mut seen: Vec<Vec<L>> = vec![Vec::new(); comps.count()];
    for (&point, label) in labels {
        let c = comps.component_of(point);
        if !seen[c].contains(label) {
            seen[c].push(label.clone());
        }
    }
    for (c, ls) in seen.into_iter().enumerate() {
        out[c] = match ls.len() {
            0 => ComponentLabel::Unlabeled,
            1 => ComponentLabel::Pure(ls.into_iter().next().expect("len 1")),
            _ => ComponentLabel::Mixed(ls),
        };
    }
    out
}

/// The separation verdict for a labeled component partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeparationReport<L> {
    /// Component ids whose labels are mixed.
    pub mixed_components: Vec<usize>,
    /// For each component, its label class.
    pub labels: Vec<ComponentLabel<L>>,
}

impl<L> SeparationReport<L> {
    /// Whether the labeled classes are separated (no mixed component).
    pub fn is_separated(&self) -> bool {
        self.mixed_components.is_empty()
    }
}

/// Check separation of the label classes across components.
pub fn check_separation<L: Clone + Eq + std::hash::Hash>(
    comps: &Components,
    labels: &HashMap<usize, L>,
) -> SeparationReport<L> {
    let labels = label_components(comps, labels);
    let mixed_components = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_mixed())
        .map(|(c, _)| c)
        .collect();
    SeparationReport { mixed_components, labels }
}

/// Complete a separated labeling into a total assignment (meta-procedure
/// steps 2–3): pure components keep their label, unlabeled components get
/// `default`.
///
/// # Panics
/// Panics if any component is mixed — check separation first.
pub fn total_assignment<L: Clone + Eq + std::hash::Hash>(
    comps: &Components,
    labels: &HashMap<usize, L>,
    default: L,
) -> Vec<L> {
    label_components(comps, labels)
        .into_iter()
        .map(|cl| match cl {
            ComponentLabel::Unlabeled => default.clone(),
            ComponentLabel::Pure(l) => l,
            ComponentLabel::Mixed(_) => {
                panic!("total_assignment requires a separated labeling")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components_by_edges;

    fn comps() -> Components {
        // {0,1}, {2}, {3,4}
        components_by_edges(5, [(0, 1), (3, 4)])
    }

    #[test]
    fn pure_labeling_separated() {
        let labels: HashMap<usize, u32> = [(0, 10), (1, 10), (3, 20)].into();
        let rep = check_separation(&comps(), &labels);
        assert!(rep.is_separated());
        assert_eq!(rep.labels[0], ComponentLabel::Pure(10));
        assert_eq!(rep.labels[1], ComponentLabel::Unlabeled);
        assert_eq!(rep.labels[2], ComponentLabel::Pure(20));
    }

    #[test]
    fn mixed_labeling_detected() {
        let labels: HashMap<usize, u32> = [(0, 10), (1, 20)].into();
        let rep = check_separation(&comps(), &labels);
        assert!(!rep.is_separated());
        assert_eq!(rep.mixed_components, vec![0]);
        assert!(rep.labels[0].is_mixed());
    }

    #[test]
    fn total_assignment_defaults_unlabeled() {
        let labels: HashMap<usize, u32> = [(0, 10), (4, 20)].into();
        let assignment = total_assignment(&comps(), &labels, 99);
        assert_eq!(assignment, vec![10, 99, 20]);
    }

    #[test]
    #[should_panic(expected = "separated labeling")]
    fn total_assignment_rejects_mixed() {
        let labels: HashMap<usize, u32> = [(3, 1), (4, 2)].into();
        let _ = total_assignment(&comps(), &labels, 0);
    }

    #[test]
    fn duplicate_labels_single_class() {
        let labels: HashMap<usize, u32> = [(3, 7), (4, 7)].into();
        let rep = check_separation(&comps(), &labels);
        assert!(rep.is_separated());
        assert_eq!(rep.labels[2], ComponentLabel::Pure(7));
    }
}
