//! A finite point-set topology toolkit.
//!
//! The paper's topological characterization operates on the space `PT^ω` of
//! infinite process-time graph sequences. Its computable shadow is a *finite*
//! space of depth-`t` prefixes where the only topological datum is the
//! relation "`a` and `b` lie in a common `ε`-ball" (`ε = 2^{−t}`): two runs
//! share a ball iff some process has the same view at time `t`. This crate
//! provides the generic machinery over such *bucketed* finite spaces:
//!
//! * [`UnionFind`] — classic disjoint sets;
//! * [`Components`] / [`components_by_buckets`] — connected components of
//!   the "shares a bucket" relation, which are exactly the paper's
//!   ε-approximations `PS^ε_z` (Definition 6.2) of the connected components;
//! * [`epsilon`] — the literal iterative construction of Definition 6.2
//!   (ball-by-ball BFS), kept alongside the union-find fast path and tested
//!   equal to it (Lemma 6.3);
//! * [`separation`] — partition/labeling utilities: valence purity,
//!   separation in the sense of the paper's Lemma 5.17, and refinement
//!   tracking across depths (Lemma 6.3(ii)).
//!
//! Everything here is deliberately independent of the consensus domain: the
//! points are `usize` indices and buckets are arbitrary hashable keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epsilon;
pub mod separation;
mod unionfind;

pub use unionfind::UnionFind;

use std::collections::HashMap;
use std::hash::Hash;

/// The connected components of a finite bucketed space.
///
/// Produced by [`components_by_buckets`]; component ids are
/// `0 … count() − 1` in order of smallest member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    comp_of: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Number of points.
    pub fn point_count(&self) -> usize {
        self.comp_of.len()
    }

    /// Component id of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn component_of(&self, i: usize) -> usize {
        self.comp_of[i]
    }

    /// Members of component `c`, sorted increasingly.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Iterate over all components.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// Whether points `i` and `j` are connected.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.comp_of[i] == self.comp_of[j]
    }

    /// Whether `self` refines `coarser`: every component of `self` is
    /// contained in a single component of `coarser` (Lemma 6.3(ii): deeper
    /// ε-approximations refine shallower ones).
    pub fn refines(&self, coarser: &Components) -> bool {
        if self.point_count() != coarser.point_count() {
            return false;
        }
        self.members.iter().all(|m| {
            let c = coarser.comp_of[m[0]];
            m.iter().all(|&i| coarser.comp_of[i] == c)
        })
    }
}

/// Compute connected components of the relation "some bucket contains both
/// points". `buckets` yields `(key, point)` pairs; all points sharing a key
/// are merged.
///
/// ```
/// use topology::components_by_buckets;
/// // 4 points; buckets: {0,1} share "a", {1,2} share "b", {3} alone.
/// let comps = components_by_buckets(4, [("a", 0), ("a", 1), ("b", 1), ("b", 2), ("c", 3)]);
/// assert_eq!(comps.count(), 2);
/// assert!(comps.connected(0, 2));
/// assert!(!comps.connected(0, 3));
/// ```
pub fn components_by_buckets<K, I>(num_points: usize, buckets: I) -> Components
where
    K: Hash + Eq,
    I: IntoIterator<Item = (K, usize)>,
{
    let mut uf = UnionFind::new(num_points);
    let mut first: HashMap<K, usize> = HashMap::new();
    for (key, point) in buckets {
        assert!(point < num_points, "point {point} out of range");
        match first.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                uf.union(*e.get(), point);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(point);
            }
        }
    }
    finish(uf)
}

/// [`components_by_buckets`] for *dense* bucket keys `0 … num_buckets − 1`:
/// the first-seen map is a flat array instead of a `HashMap`, so the merge
/// pass never hashes. Produces exactly the same [`Components`] as the
/// hashed version over the same `(key, point)` pairs (component ids are
/// canonical — ordered by smallest member — either way).
///
/// ```
/// use topology::components_by_dense_buckets;
/// let comps = components_by_dense_buckets(4, 3, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)]);
/// assert_eq!(comps.count(), 2);
/// assert!(comps.connected(0, 2));
/// assert!(!comps.connected(0, 3));
/// ```
///
/// # Panics
/// Panics if a point or bucket index is out of range.
pub fn components_by_dense_buckets<I>(
    num_points: usize,
    num_buckets: usize,
    buckets: I,
) -> Components
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut uf = UnionFind::new(num_points);
    let mut first: Vec<usize> = vec![usize::MAX; num_buckets];
    for (key, point) in buckets {
        assert!(point < num_points, "point {point} out of range");
        assert!(key < num_buckets, "bucket {key} out of range");
        if first[key] == usize::MAX {
            first[key] = point;
        } else {
            uf.union(first[key], point);
        }
    }
    finish(uf)
}

/// Components from an explicit edge list.
pub fn components_by_edges<I>(num_points: usize, edges: I) -> Components
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut uf = UnionFind::new(num_points);
    for (a, b) in edges {
        uf.union(a, b);
    }
    finish(uf)
}

fn finish(mut uf: UnionFind) -> Components {
    let n = uf.len();
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut comp_of = Vec::with_capacity(n);
    let mut members: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = uf.find(i);
        let c = *remap.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        comp_of.push(c);
        members[c].push(i);
    }
    Components { comp_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_space() {
        let c = components_by_buckets::<u32, _>(0, []);
        assert_eq!(c.count(), 0);
        assert_eq!(c.point_count(), 0);
    }

    #[test]
    fn singletons_without_buckets() {
        let c = components_by_buckets::<u32, _>(3, []);
        assert_eq!(c.count(), 3);
        for i in 0..3 {
            assert_eq!(c.members(c.component_of(i)), &[i]);
        }
    }

    #[test]
    fn chain_merge() {
        let c = components_by_buckets(5, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (2, 4)]);
        assert_eq!(c.count(), 2);
        assert!(c.connected(0, 2));
        assert!(c.connected(3, 4));
        assert!(!c.connected(2, 3));
    }

    #[test]
    fn component_ids_ordered_by_smallest_member() {
        let c = components_by_edges(4, [(2, 3)]);
        // Components: {0}, {1}, {2,3} → ids 0, 1, 2.
        assert_eq!(c.component_of(0), 0);
        assert_eq!(c.component_of(1), 1);
        assert_eq!(c.component_of(2), 2);
        assert_eq!(c.members(2), &[2, 3]);
    }

    #[test]
    fn members_partition_points() {
        let c = components_by_edges(6, [(0, 5), (1, 2), (2, 3)]);
        let mut all: Vec<usize> = c.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn refinement() {
        let coarse = components_by_edges(4, [(0, 1), (1, 2)]);
        let fine = components_by_edges(4, [(0, 1)]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
    }

    #[test]
    fn refines_rejects_size_mismatch() {
        let a = components_by_edges(2, []);
        let b = components_by_edges(3, []);
        assert!(!a.refines(&b));
    }

    #[test]
    fn dense_buckets_match_hashed_buckets() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.random_range(1..40);
            let b = rng.random_range(1..12usize);
            let pairs: Vec<(usize, usize)> = (0..rng.random_range(0..80))
                .map(|_| (rng.random_range(0..b), rng.random_range(0..n)))
                .collect();
            let hashed = components_by_buckets(n, pairs.iter().copied());
            let dense = components_by_dense_buckets(n, b, pairs.iter().copied());
            assert_eq!(hashed, dense);
        }
    }

    #[test]
    fn random_edges_match_bfs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.random_range(1..40);
            let m = rng.random_range(0..80);
            let edges: Vec<(usize, usize)> =
                (0..m).map(|_| (rng.random_range(0..n), rng.random_range(0..n))).collect();
            let comps = components_by_edges(n, edges.iter().copied());
            // Reference: BFS.
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in &edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            let mut seen = vec![usize::MAX; n];
            let mut next_comp = 0;
            for s in 0..n {
                if seen[s] != usize::MAX {
                    continue;
                }
                let mut stack = vec![s];
                seen[s] = next_comp;
                while let Some(v) = stack.pop() {
                    for &w in &adj[v] {
                        if seen[w] == usize::MAX {
                            seen[w] = next_comp;
                            stack.push(w);
                        }
                    }
                }
                next_comp += 1;
            }
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(comps.connected(i, j), seen[i] == seen[j]);
                }
            }
        }
    }
}
