//! The literal ε-approximation construction of the paper's Definition 6.2.
//!
//! `PS^ε_z` is built iteratively: `PS^ε_z[0] = {z}`; each step adds the
//! ε-balls around all current members (intersected with the space); the
//! construction stops at a fixpoint, reached after finitely many steps in a
//! finite space. Lemma 6.3 establishes: (ii) monotonicity in ε, (iii) two
//! approximations are equal or disjoint, (iv) the true connected component
//! is contained in the approximation.
//!
//! In the bucketed finite spaces used here, the ε-ball of `a` is the union
//! of `a`'s buckets, so `PS^ε_z` coincides with the union-find component of
//! `z` computed by [`crate::components_by_buckets`]; this module keeps the
//! paper-literal BFS as an executable specification (tested equal).

use std::collections::HashMap;
use std::hash::Hash;

/// A bucketed finite space: each point belongs to the buckets listed; the
/// ε-ball of a point is the union of its buckets.
#[derive(Debug, Clone)]
pub struct BucketSpace<K> {
    /// `point_buckets[i]` = keys of the buckets containing point `i`.
    point_buckets: Vec<Vec<K>>,
    /// bucket key → member points.
    bucket_members: HashMap<K, Vec<usize>>,
}

impl<K: Hash + Eq + Clone> BucketSpace<K> {
    /// Build from `(key, point)` pairs over `num_points` points.
    ///
    /// # Panics
    /// Panics if a point index is out of range.
    pub fn new<I: IntoIterator<Item = (K, usize)>>(num_points: usize, pairs: I) -> Self {
        let mut point_buckets = vec![Vec::new(); num_points];
        let mut bucket_members: HashMap<K, Vec<usize>> = HashMap::new();
        for (k, p) in pairs {
            assert!(p < num_points, "point {p} out of range");
            point_buckets[p].push(k.clone());
            bucket_members.entry(k).or_default().push(p);
        }
        BucketSpace { point_buckets, bucket_members }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.point_buckets.len()
    }

    /// Whether the space has no points.
    pub fn is_empty(&self) -> bool {
        self.point_buckets.is_empty()
    }

    /// The ε-ball of `point`: every point sharing a bucket (including
    /// `point` itself).
    pub fn ball(&self, point: usize) -> Vec<usize> {
        let mut out = vec![point];
        for k in &self.point_buckets[point] {
            out.extend(self.bucket_members[k].iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The iterative ε-approximation `PS^ε_z` of Definition 6.2: repeatedly
    /// add the balls of all members until the fixpoint. Returns the sorted
    /// member list together with the number of iterations `m` used
    /// (`PS^ε_z[m] = PS^ε_z[m+1]`).
    pub fn epsilon_approximation(&self, z: usize) -> (Vec<usize>, usize) {
        assert!(z < self.len(), "seed out of range");
        let mut in_set = vec![false; self.len()];
        in_set[z] = true;
        let mut frontier = vec![z];
        let mut iterations = 0;
        while !frontier.is_empty() {
            iterations += 1;
            let mut next = Vec::new();
            for &p in &frontier {
                for q in self.ball(p) {
                    if !in_set[q] {
                        in_set[q] = true;
                        next.push(q);
                    }
                }
            }
            frontier = next;
        }
        let members: Vec<usize> = (0..self.len()).filter(|&i| in_set[i]).collect();
        (members, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components_by_buckets;

    fn space() -> BucketSpace<u32> {
        // 6 points; buckets 0:{0,1}, 1:{1,2}, 2:{3,4}; point 5 isolated.
        BucketSpace::new(6, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (2, 4)])
    }

    #[test]
    fn ball_contents() {
        let s = space();
        assert_eq!(s.ball(0), vec![0, 1]);
        assert_eq!(s.ball(1), vec![0, 1, 2]);
        assert_eq!(s.ball(5), vec![5]);
    }

    #[test]
    fn epsilon_approximation_reaches_component() {
        let s = space();
        let (m, iters) = s.epsilon_approximation(0);
        assert_eq!(m, vec![0, 1, 2]);
        assert!(iters >= 2, "chain needs ≥ 2 ball steps");
        let (m, _) = s.epsilon_approximation(4);
        assert_eq!(m, vec![3, 4]);
        let (m, _) = s.epsilon_approximation(5);
        assert_eq!(m, vec![5]);
    }

    #[test]
    fn lemma_6_3_iii_equal_or_disjoint() {
        let s = space();
        for z in 0..6 {
            for w in 0..6 {
                let (a, _) = s.epsilon_approximation(z);
                let (b, _) = s.epsilon_approximation(w);
                let intersect = a.iter().any(|x| b.contains(x));
                assert_eq!(intersect, a == b, "z={z}, w={w}");
            }
        }
    }

    #[test]
    fn matches_union_find_components() {
        // The executable specification agrees with the fast path.
        let pairs = [(0u32, 0), (0, 1), (1, 1), (1, 2), (2, 3), (2, 4)];
        let s = BucketSpace::new(6, pairs);
        let c = components_by_buckets(6, pairs);
        for z in 0..6 {
            let (members, _) = s.epsilon_approximation(z);
            let comp = c.members(c.component_of(z));
            assert_eq!(members, comp, "seed {z}");
        }
    }

    #[test]
    fn random_agreement_with_union_find() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..15 {
            let n = rng.random_range(1..30);
            let pairs: Vec<(u32, usize)> = (0..rng.random_range(0..60))
                .map(|_| (rng.random_range(0..8u32), rng.random_range(0..n)))
                .collect();
            let s = BucketSpace::new(n, pairs.iter().copied());
            let c = components_by_buckets(n, pairs.iter().copied());
            for z in 0..n {
                let (members, _) = s.epsilon_approximation(z);
                assert_eq!(members, c.members(c.component_of(z)));
            }
        }
    }
}
