//! Shared helpers for the cross-crate integration tests.

use adversary::GeneralMA;
use dyngraph::{generators, Digraph};

/// All 15 nonempty pools over the four 2-process graphs, each with its
/// ground-truth solvability per the literature ([8, 21]; see DESIGN.md §7):
/// solvable iff every kernel class has a nonempty common kernel
/// intersection — for `n = 2` this matches Coulouma–Godard–Peters.
pub fn n2_pool_ground_truth() -> Vec<(Vec<Digraph>, bool)> {
    let all: Vec<Digraph> = generators::all_graphs(2).collect();
    let mut out = Vec::new();
    for bits in 1u32..16 {
        let pool: Vec<Digraph> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, g)| g.clone())
            .collect();
        let expected = consensus_core::baselines::kernel_beta_solvable_n2(&pool);
        out.push((pool, expected));
    }
    out
}

/// The Santoro–Widmayer lossy-link adversary (unsolvable).
pub fn lossy_link_full_ma() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_full())
}

/// The reduced (solvable) lossy-link adversary.
pub fn lossy_link_reduced_ma() -> GeneralMA {
    GeneralMA::oblivious(generators::lossy_link_reduced())
}
