//! Spec-language acceptance (ISSUE 7): lowered combinator terms are
//! *algebraically identical* to direct `UnionMA`/`IntersectMA` construction,
//! every catalog entry is expressible as a spec string with the same
//! verdict as its named path, the canonical spec strings are pinned so the
//! grammar cannot drift silently, and a composed spec survives a warm
//! disk-journal restart with zero re-expansions.

use std::fs;
use std::path::PathBuf;

use adversary::{catalog, IntersectMA, MessageAdversary, SpecTerm, UnionMA};
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::{AnalysisConfig, CacheConfig, ExpandConfig};
use dyngraph::generators::all_graphs;
use dyngraph::{GraphSeq, Lasso};

const MAX_DEPTH: usize = 3;
const BUDGET: usize = 2_000_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("consensus-spec-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn session(cache: CacheConfig) -> Session {
    Session::with_configs(ExpandConfig::with_budget(BUDGET), AnalysisConfig::default(), cache)
        .expect("cache dir must open")
        .workers(2)
}

/// Every graph word over `n` processes with `0..=depth` rounds, in a
/// deterministic order (the expansion engine probes exactly these).
fn words_up_to(n: usize, depth: usize) -> Vec<GraphSeq> {
    let graphs: Vec<_> = all_graphs(n).collect();
    let mut words = vec![GraphSeq::new()];
    let mut frontier = vec![GraphSeq::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * graphs.len());
        for word in &frontier {
            for g in &graphs {
                let extended = word.extended(g.clone());
                words.push(extended.clone());
                next.push(extended);
            }
        }
        frontier = next;
    }
    words
}

/// `union(a, b)` lowers to something observationally equal to
/// `UnionMA::new([a, b])`: same extensions, same prefix admissions, same
/// lasso verdicts, over every word up to depth 3.
#[test]
fn union_spec_is_identical_to_direct_union_construction() {
    let composed = SpecTerm::parse("union(pool(->), eventually(<- -> <->, <->, by=2))")
        .unwrap()
        .lower()
        .unwrap();
    let direct = UnionMA::new(vec![
        SpecTerm::parse("pool(->)").unwrap().lower().unwrap(),
        SpecTerm::parse("eventually(<- -> <->, <->, by=2)").unwrap().lower().unwrap(),
    ]);
    assert_eq!(composed.n(), direct.n());
    assert_eq!(composed.is_compact(), direct.is_compact());
    assert_eq!(composed.fingerprint(), direct.fingerprint());
    for word in words_up_to(2, MAX_DEPTH) {
        assert_eq!(
            composed.extensions(&word),
            direct.extensions(&word),
            "extensions diverge after {word:?}"
        );
        assert_eq!(
            composed.admits_prefix(&word),
            direct.admits_prefix(&word),
            "admits_prefix diverges on {word:?}"
        );
    }
    for lasso in ["<-> | ->", "| <->", "-> | <- ->", "| . "] {
        let lasso = Lasso::parse2(lasso).unwrap();
        assert_eq!(composed.admits_lasso(&lasso), direct.admits_lasso(&lasso));
    }
}

/// Same identity for `intersect(a, b)` against `IntersectMA::new`.
#[test]
fn intersect_spec_is_identical_to_direct_intersect_construction() {
    let composed = SpecTerm::parse("intersect(pool(<- -> <->), eventually(<- -> <->, <->))")
        .unwrap()
        .lower()
        .unwrap();
    let direct = IntersectMA::new(vec![
        SpecTerm::parse("pool(<- -> <->)").unwrap().lower().unwrap(),
        SpecTerm::parse("eventually(<- -> <->, <->)").unwrap().lower().unwrap(),
    ]);
    assert_eq!(composed.n(), direct.n());
    assert_eq!(composed.is_compact(), direct.is_compact());
    assert_eq!(composed.fingerprint(), direct.fingerprint());
    for word in words_up_to(2, MAX_DEPTH) {
        assert_eq!(
            composed.extensions(&word),
            direct.extensions(&word),
            "extensions diverge after {word:?}"
        );
        assert_eq!(
            composed.admits_prefix(&word),
            direct.admits_prefix(&word),
            "admits_prefix diverges on {word:?}"
        );
    }
    for lasso in ["<-> | <->", "| ->", "<- | <-> <-"] {
        let lasso = Lasso::parse2(lasso).unwrap();
        assert_eq!(composed.admits_lasso(&lasso), direct.admits_lasso(&lasso));
    }
}

/// The canonical spec string of every catalog entry is pinned. A change
/// here means the printed grammar (or a pool's canonical sort) drifted —
/// which silently invalidates saved spec strings in the wild.
#[test]
fn catalog_spec_strings_are_pinned() {
    let pinned = [
        ("sw-lossy-link", "pool(<- -> <->)"),
        ("cgp-reduced-lossy-link", "pool(<- ->)"),
        ("message-loss-2-0", "pool(<->)"),
        ("message-loss-2-1", "pool(<- -> <->)"),
        ("message-loss-2-2", "pool(. <- -> <->)"),
        ("rotating-star-3", "catalog(rotating-star-3)"),
        ("all-rooted-2", "pool(<- -> <->)"),
        ("vssc-2-2-by-3", "window(<- -> <->, 2, by=3)"),
        ("vssc-2-1-by-2", "window(<- -> <->, 1, by=2)"),
        ("eventually-bidirectional", "eventually(<- -> <->, <->)"),
        ("eventually-bidirectional-by-2", "eventually(<- -> <->, <->, by=2)"),
        ("forever-directional", "union(pool(->), pool(<-))"),
    ];
    let entries = catalog::entries();
    assert_eq!(entries.len(), pinned.len(), "pin new catalog entries here");
    for (entry, (name, spec)) in entries.iter().zip(pinned) {
        assert_eq!(entry.name, name);
        assert_eq!(entry.spec, spec, "canonical spec for {name} drifted");
        let term = SpecTerm::parse(spec).expect(name);
        assert_eq!(term.to_string(), spec, "{name}: pinned spec must be canonical");
        assert_eq!(
            term.fingerprint().expect(name),
            entry.build().fingerprint(),
            "{name}: spec string and build() must share one fingerprint"
        );
    }
}

/// Checking a catalog entry through its spec string answers the same
/// record as the named path — byte-identical modulo timing, the adversary
/// label (the spec path labels with the canonical term), and the catalog's
/// ground-truth annotation (only a *named* query knows the literature's
/// expected verdict; a structural spec cannot).
#[test]
fn catalog_spec_strings_answer_the_named_verdicts() {
    const LABEL_FIELDS: &[&str] = &["adversary", "expected", "matches_expected"];
    let session = session(CacheConfig::default());
    for entry in catalog::entries() {
        let named = session
            .check(&Query::catalog(entry.name, MAX_DEPTH, AnalysisKind::Solvability))
            .expect(entry.name);
        let via_spec = session
            .check(
                &Query::spec(entry.spec, MAX_DEPTH, AnalysisKind::Solvability).expect(entry.name),
            )
            .expect(entry.name);
        assert_eq!(
            named.to_json().without_keys(TIMING_FIELDS).without_keys(LABEL_FIELDS),
            via_spec.to_json().without_keys(TIMING_FIELDS).without_keys(LABEL_FIELDS),
            "{}: spec path and named path disagree",
            entry.name
        );
    }
}

/// The restart acceptance criterion: a composed (non-catalog) spec checked
/// against a disk journal is answered from disk by a fresh process — zero
/// expansions, identical records.
#[test]
fn composed_spec_survives_a_warm_restart_with_zero_expansions() {
    let dir = tmp_dir("warm-spec");
    let queries: Vec<Query> = [
        "union(pool(->), pool(<-))",
        "intersect(pool(<- -> <->), eventually(<- -> <->, <->))",
        "prefix(<->, catalog(sw-lossy-link))",
        "window(<- -> <->, 1, by=2)",
    ]
    .iter()
    .map(|spec| Query::spec(spec, MAX_DEPTH, AnalysisKind::Solvability).expect(spec))
    .collect();

    let cold_session = session(CacheConfig::new().disk_dir(&dir));
    let cold = cold_session.check_many(&queries);
    assert!(cold.cache.builds > 0, "cold pass must expand something");
    drop(cold_session);

    let warm_session = session(CacheConfig::new().disk_dir(&dir));
    let warm = warm_session.check_many(&queries);
    assert_eq!(warm.cache.builds, 0, "warm restart must re-expand nothing: {:?}", warm.cache);
    assert_eq!(warm.cache.disk_hits, queries.len(), "every spec answered from disk");
    let rows = |records: &[consensus_lab::store::ScenarioRecord]| -> Vec<String> {
        records
            .iter()
            .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
            .collect()
    };
    assert_eq!(rows(cold.store.records()), rows(warm.store.records()));
    let _ = fs::remove_dir_all(&dir);
}
