//! Incremental-equivalence properties of the depth ladder (ISSUE 2): a
//! space reached by `extend()`/`extend_from()` laddering is
//! indistinguishable — stats, verdicts, JSONL rows — from one built from
//! scratch at the target depth, across the full catalog at depths 1..=4.

use adversary::catalog;
use consensus_core::config::ExpandConfig;
use consensus_core::PrefixSpace;
use consensus_lab::cache::SpaceCache;
use consensus_lab::runner::execute_scenario;
use consensus_lab::scenario::{AnalysisKind, GridBuilder};
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;

const MAX_DEPTH: usize = 4;
const BUDGET: usize = 2_000_000;
const VALUES: &[ptgraph::Value] = &[0, 1];
const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: BUDGET };

/// Laddered spaces match from-scratch builds exactly: same stats, same
/// separation verdict, same run enumeration order, for every catalog entry
/// at every depth 1..=4.
#[test]
fn laddered_spaces_match_scratch_builds_across_catalog() {
    for entry in catalog::entries() {
        let ma = entry.build();
        let mut laddered = PrefixSpace::expand(&ma, VALUES, 0, &CFG)
            .unwrap_or_else(|e| panic!("{}: depth-0 build failed: {e}", entry.name));
        for depth in 1..=MAX_DEPTH {
            // `extended_from` leaves the ancestor intact (the cache's leg);
            // use it for the step so both seams are exercised.
            laddered = laddered
                .extend_from(&ma, &CFG)
                .unwrap_or_else(|e| panic!("{}@{depth}: extension failed: {e}", entry.name));
            let scratch = PrefixSpace::expand(&ma, VALUES, depth, &CFG)
                .unwrap_or_else(|e| panic!("{}@{depth}: build failed: {e}", entry.name));
            assert_eq!(
                laddered.stats(),
                scratch.stats(),
                "{}@{depth}: stats diverge between ladder and scratch",
                entry.name
            );
            assert_eq!(
                laddered.separation().is_separated(),
                scratch.separation().is_separated(),
                "{}@{depth}: separation verdict diverges",
                entry.name
            );
            assert_eq!(
                laddered.component_assignment(),
                scratch.component_assignment(),
                "{}@{depth}: component assignment diverges",
                entry.name
            );
            // Run enumeration order is identical, which is what makes every
            // downstream artifact (chains, assignments, JSONL) comparable.
            assert_eq!(laddered.runs().len(), scratch.runs().len());
            for (a, b) in laddered.runs().iter().zip(scratch.runs()) {
                assert_eq!(a.inputs(), b.inputs(), "{}@{depth}", entry.name);
                assert_eq!(a.seq(), b.seq(), "{}@{depth}", entry.name);
            }
        }
    }
}

/// Sweeping through a shared (laddering) cache produces byte-identical
/// JSONL rows, modulo timing fields, to sweeping every scenario against
/// its own fresh cache (where every space is built from scratch).
#[test]
fn laddered_sweep_rows_match_scratch_sweep_rows() {
    let grid = GridBuilder::new(MAX_DEPTH, BUDGET).over_catalog();

    // Scratch: a fresh cache per scenario — no ancestor ever available, so
    // every space request is a full expansion.
    let scratch_rows: Vec<String> = grid
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            let lone = SpaceCache::new();
            execute_scenario(i, scenario, &lone, None)
                .to_json()
                .without_keys(TIMING_FIELDS)
                .to_string()
        })
        .collect();

    // Laddered: one session (one shared cache) across the whole grid.
    let session = Session::new().workers(2);
    let queries = Query::catalog_grid(MAX_DEPTH, &AnalysisKind::ALL);
    let report = session.check_many(&queries);
    let ladder_rows: Vec<String> = report
        .store
        .records()
        .iter()
        .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
        .collect();

    assert_eq!(scratch_rows, ladder_rows, "ladder must be invisible in the results");
    let stats = session.space_cache().stats();
    assert!(stats.ladder_hits > 0, "a catalog sweep must exercise the ladder: {stats:?}");
    assert!(
        stats.builds < grid.len() / 2,
        "laddering must replace most full expansions: {stats:?}"
    );
}

/// The acceptance shape: a depth-`d` miss with a cached depth-`d-1`
/// ancestor goes through `extended()` (a ladder hit), not a rebuild.
#[test]
fn depth_miss_with_ancestor_ladders_not_rebuilds() {
    let cache = SpaceCache::new();
    let ma = catalog::by_name("sw-lossy-link").expect("catalog entry").build();
    for depth in 0..=MAX_DEPTH {
        cache
            .space_with_meta(&ma, VALUES, depth, BUDGET)
            .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
    }
    let stats = cache.stats();
    assert_eq!(stats.builds, 1, "only depth 0 may build from scratch: {stats:?}");
    assert_eq!(stats.ladder_hits, MAX_DEPTH, "each deeper depth ladders once: {stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");
}
