//! Property-style tests of the paper's topological laws (experiments T3,
//! T6, T7 of DESIGN.md).
//!
//! Driven by a seeded deterministic generator (the offline stand-in for
//! proptest; see `crates/compat/README.md`).

use dyngraph::{generators, Digraph, GraphSeq};
use ptgraph::{contamination, distance, PrefixRun, ViewTable};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simulator::{algorithms::FullInfo, engine};

const CASES: usize = 64;

/// A random run (inputs, sequence) on `n` processes, `t` rounds.
fn random_run(rng: &mut StdRng, n: usize, t: usize) -> (Vec<u32>, Vec<u64>) {
    let max_code: u64 = 1 << (n * n);
    let inputs = (0..n).map(|_| rng.random_range(0..3u32)).collect();
    let seq = (0..t).map(|_| rng.random_range(0..max_code)).collect();
    (inputs, seq)
}

fn materialize(n: usize, inputs: &[u32], codes: &[u64], table: &mut ViewTable) -> PrefixRun {
    let graphs: Vec<Digraph> =
        codes.iter().map(|&c| Digraph::from_code(n, c).normalized()).collect();
    PrefixRun::compute(inputs.to_vec(), &GraphSeq::from_graphs(graphs), table)
}

/// T7 / Theorem 4.3: symmetry, triangle inequality, monotonicity in P,
/// and d_[n] = d_max, on random n = 3 runs.
#[test]
fn pseudo_metric_laws() {
    let mut rng = StdRng::seed_from_u64(0x0701);
    for _ in 0..CASES {
        let (xa, sa) = random_run(&mut rng, 3, 4);
        let (xb, sb) = random_run(&mut rng, 3, 4);
        let (xc, sc) = random_run(&mut rng, 3, 4);
        let mut table = ViewTable::new(3);
        let a = materialize(3, &xa, &sa, &mut table);
        let b = materialize(3, &xb, &sb, &mut table);
        let c = materialize(3, &xc, &sc, &mut table);

        for p in 0..3 {
            // Symmetry.
            assert_eq!(distance::d_p(&a, &b, p), distance::d_p(&b, &a, p));
            // Triangle inequality on the dyadic values.
            let ab = distance::d_p(&a, &b, p).as_f64();
            let bc = distance::d_p(&b, &c, p).as_f64();
            let ac = distance::d_p(&a, &c, p).as_f64();
            assert!(ac <= ab + bc + 1e-12);
        }
        // Monotonicity: d_P ≤ d_Q for P ⊆ Q.
        let d01 = distance::d_set(&a, &b, &[0, 1]);
        let d012 = distance::d_set(&a, &b, &[0, 1, 2]);
        assert!(d01 <= d012);
        // d_[n] = d_max.
        assert_eq!(distance::d_max(&a, &b), d012);
        // d_min ≤ d_p ≤ d_max.
        let dmin = distance::d_min(&a, &b);
        for p in 0..3 {
            let dp = distance::d_p(&a, &b, p);
            assert!(dmin <= dp);
            assert!(dp <= distance::d_max(&a, &b));
        }
    }
}

/// The contamination rule coincides with interned-view inequality
/// (the exactness of the divergence calculus, DESIGN.md §3).
#[test]
fn contamination_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x0702);
    for _ in 0..CASES {
        let (xa, sa) = random_run(&mut rng, 3, 5);
        let (xb, sb) = random_run(&mut rng, 3, 5);
        let mut table = ViewTable::new(3);
        let a = materialize(3, &xa, &sa, &mut table);
        let b = materialize(3, &xb, &sb, &mut table);
        let trace = contamination::finite_trace(&a, &b);
        for (t, d) in trace.iter().enumerate() {
            for p in 0..3 {
                let differs = a.view(p, t) != b.view(p, t);
                assert_eq!(differs, d & (1 << p) != 0, "t={t} p={p}");
            }
        }
    }
}

/// T6 / Lemma 4.5: the transition function τ (full-information protocol)
/// is non-expansive: equal views at time t imply equal states at time t,
/// so d_P(τ(a), τ(b)) ≤ d_P(a, b).
#[test]
fn tau_is_continuous() {
    let mut rng = StdRng::seed_from_u64(0x0703);
    for _ in 0..CASES {
        let (xa, sa) = random_run(&mut rng, 2, 4);
        let (xb, sb) = random_run(&mut rng, 2, 4);
        let mut table = ViewTable::new(2);
        let a = materialize(2, &xa, &sa, &mut table);
        let b = materialize(2, &xb, &sb, &mut table);
        let ea = engine::run(&FullInfo, a.inputs(), a.seq());
        let eb = engine::run(&FullInfo, b.inputs(), b.seq());
        for t in 0..=4usize {
            for p in 0..2 {
                let views_equal = a.view(p, t) == b.view(p, t);
                let states_equal = ea.states[t][p] == eb.states[t][p];
                // Views are exactly the full-information states: equality
                // must coincide, which gives continuity in both directions.
                assert_eq!(views_equal, states_equal, "t={t} p={p}");
            }
        }
    }
}

/// Views are cumulative: once a process distinguishes two runs it
/// distinguishes them forever (monotone divergence).
#[test]
fn divergence_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x0704);
    for _ in 0..CASES {
        let (xa, sa) = random_run(&mut rng, 3, 5);
        let (xb, sb) = random_run(&mut rng, 3, 5);
        let mut table = ViewTable::new(3);
        let a = materialize(3, &xa, &sa, &mut table);
        let b = materialize(3, &xb, &sb, &mut table);
        for p in 0..3 {
            let mut diverged = false;
            for t in 0..=5usize {
                let now = a.view(p, t) != b.view(p, t);
                assert!(!diverged || now, "divergence must persist");
                diverged = now;
            }
        }
    }
}

/// T3 / Theorem 5.9: on every component of a battery of prefix spaces, a
/// broadcaster's input is constant (diameter ≤ 1/2 in d_min).
#[test]
fn broadcastable_components_have_constant_broadcaster_input() {
    use adversary::GeneralMA;
    use consensus_core::space::PrefixSpace;
    let pools: Vec<Vec<Digraph>> = vec![
        generators::lossy_link_full(),
        generators::lossy_link_reduced(),
        generators::all_out_stars(3),
        vec![Digraph::complete(3)],
        vec![generators::cycle(3), generators::star_out(3, 1)],
    ];
    for pool in pools {
        let ma = GeneralMA::oblivious(pool);
        let space =
            PrefixSpace::expand(&ma, &[0, 1], 2, &consensus_core::ExpandConfig::default()).unwrap();
        for c in 0..space.components().count() {
            for &p in &space.component_broadcasters(c) {
                let members = space.components().members(c);
                let x0 = space.runs()[members[0]].inputs()[p];
                for &i in members {
                    assert_eq!(space.runs()[i].inputs()[p], x0);
                }
            }
        }
    }
}

/// Theorem 5.13 shape: for compact adversaries with separated valences the
/// decision classes have positive distance (Fig. 4); mixed spaces touch.
#[test]
fn class_distances_match_separation() {
    use adversary::GeneralMA;
    use consensus_core::analysis;
    for (pool, expect_separated) in
        [(generators::lossy_link_reduced(), true), (generators::lossy_link_full(), false)]
    {
        let ma = GeneralMA::oblivious(pool);
        let space = consensus_core::space::PrefixSpace::expand(
            &ma,
            &[0, 1],
            3,
            &consensus_core::ExpandConfig::default(),
        )
        .unwrap();
        let rep = analysis::report(&space);
        assert_eq!(rep.separated, expect_separated);
        match (expect_separated, rep.min_class_distance.unwrap()) {
            (true, distance::Distance::Finite(t)) => assert!(t >= 1),
            (false, distance::Distance::Below(t)) => assert_eq!(t, 3),
            (sep, d) => panic!("separated={sep} but distance {d:?}"),
        }
    }
}
