//! Deeper-horizon consistency: the finite machinery must stay coherent as
//! resolutions grow (separation once reached persists, certificates keep
//! verifying, incremental and direct expansions agree at depth).

use adversary::{GeneralMA, MessageAdversary};
use consensus_core::config::ExpandConfig;
use consensus_core::{fair, PrefixSpace};
use dyngraph::generators;

const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: 5_000_000 };

/// Separation is monotone once reached: if the valence classes are
/// separated at depth `t`, they stay separated at `t + 1` (components
/// refine, Lemma 6.3(ii)).
#[test]
fn separation_persists_under_refinement() {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let mut space = PrefixSpace::expand(&ma, &[0, 1], 0, &CFG).unwrap();
    let mut separated_since = None;
    for depth in 1..=7 {
        space = space.extend(&ma, &CFG).unwrap();
        let sep = space.separation().is_separated();
        if sep && separated_since.is_none() {
            separated_since = Some(depth);
        }
        if separated_since.is_some() {
            assert!(sep, "separation lost at depth {depth}");
        }
    }
    assert_eq!(separated_since, Some(1));
}

/// Mixing is persistent for the lossy link out to depth 6, and the
/// per-depth valence chains keep validating.
#[test]
fn lossy_link_mixing_persists_deep() {
    let ma = GeneralMA::oblivious(generators::lossy_link_full());
    let mut space = PrefixSpace::expand(&ma, &[0, 1], 0, &CFG).unwrap();
    for depth in 1..=6 {
        space = space.extend(&ma, &CFG).unwrap();
        assert!(!space.separation().is_separated(), "separated at depth {depth}?!");
        let chain = fair::valence_chain(&space, 0, 1).expect("chain at every depth");
        assert!(fair::validate_epsilon_chain(&space, &chain));
    }
    // At depth 6 the space has 4 · 3^6 = 2,916 sequences ⇒ 11,664 runs.
    assert_eq!(space.runs().len(), 4 * 3usize.pow(6));
}

/// View interning scales sub-linearly in runs: distinct views are far fewer
/// than runs × processes × times because indistinguishable branches share.
#[test]
fn interner_sharing_is_effective() {
    let ma = GeneralMA::oblivious(generators::lossy_link_full());
    let space = PrefixSpace::expand(&ma, &[0, 1], 5, &CFG).unwrap();
    let naive = space.runs().len() * space.n() * (space.depth() + 1);
    let interned = space.table().len();
    assert!(
        interned * 2 < naive,
        "interning should at least halve the naive view count: {interned} vs {naive}"
    );
}

/// The parallel verifier agrees with the sequential one on a deep space.
#[test]
fn parallel_verifier_deep_agreement() {
    use consensus_core::solvability::Verdict;
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let cert = match consensus_core::SolvabilityChecker::new(ma.clone()).max_depth(3).check() {
        Verdict::Solvable(cert) => cert,
        other => panic!("expected solvable: {other:?}"),
    };
    let check_cfg = simulator::checker::CheckConfig::at_depth(6).max_runs(5_000_000);
    let seq_report = simulator::checker::check(&cert.algorithm, &ma, &[0, 1], &check_cfg).unwrap();
    let par_report =
        simulator::checker::check_parallel(&cert.algorithm, &ma, &[0, 1], &check_cfg, 4).unwrap();
    assert!(seq_report.passed() && par_report.passed());
    assert_eq!(seq_report.runs_checked, par_report.runs_checked);
    assert_eq!(seq_report.max_decision_round, par_report.max_decision_round);
    assert_eq!(seq_report.runs_checked, 4 * 2usize.pow(6));
}

/// Boundary census consistency at depth: admissible counts from the census
/// equal the enumeration's sequence counts.
#[test]
fn boundary_census_matches_enumeration() {
    let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, Some(3));
    for depth in 0..=4 {
        let rep = consensus_core::compactness::boundary_report(&ma, depth).unwrap();
        let seqs = adversary::enumerate::admissible_sequences(&ma, depth);
        assert_eq!(rep.admissible, seqs.len(), "depth {depth}");
        assert_eq!(rep.pool_valid, 3usize.pow(depth as u32));
    }
}

/// Excluded-limit witnesses exist at every probed prefix agreement length,
/// not just short ones (the convergence is genuine).
#[test]
fn witnesses_at_long_agreement_lengths() {
    let ma = GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        dyngraph::Digraph::parse2("<->").unwrap(),
        None,
    );
    let limit = dyngraph::Lasso::parse2("->").unwrap();
    for k in [1usize, 5, 10, 20] {
        let w = adversary::limit::admissible_rejoin(&ma, &limit, k)
            .unwrap_or_else(|| panic!("witness at agreement length {k}"));
        for t in 1..=k {
            assert_eq!(w.graph_at(t), limit.graph_at(t));
        }
        assert_eq!(ma.admits_lasso(&w), Some(true));
    }
}
