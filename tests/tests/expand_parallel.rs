//! Parallel/serial expansion-engine equivalence over the full catalog.
//!
//! The determinism contract of the sharded engine: for ANY worker count,
//! the expanded space is **byte-identical** to the serial one — same run
//! order, same interned `ViewId` assignment, same view-table contents,
//! same ε-component ids — so fingerprint-keyed caches, the depth ladder,
//! and persisted verdicts can never observe which engine ran.
//!
//! The worker counts exercised default to {1, 2, 8}; CI narrows a job to
//! one count via the `EXPAND_THREADS` env var (e.g. `EXPAND_THREADS=2`).

use adversary::catalog;
use adversary::enumerate::{expand, expand_with};
use consensus_core::config::ExpandConfig;
use consensus_core::PrefixSpace;
use consensus_lab::cache::SpaceCache;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;

const BUDGET: usize = 2_000_000;
const VALUES: &[u32] = &[0, 1];
const DEPTHS: std::ops::RangeInclusive<usize> = 1..=4;
const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: BUDGET };

/// Worker counts under test: `EXPAND_THREADS` (comma-separated) or 1, 2, 8.
fn thread_counts() -> Vec<usize> {
    match std::env::var("EXPAND_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("EXPAND_THREADS must be comma-separated numbers"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

#[test]
fn expansions_byte_identical_across_worker_counts() {
    for entry in catalog::entries() {
        let ma = entry.build();
        for depth in DEPTHS {
            let serial = match expand(&ma, VALUES, depth, BUDGET) {
                Ok(e) => e,
                Err(serial_err) => {
                    // Over budget: every engine must report the same error.
                    for threads in thread_counts() {
                        let err = expand_with(&ma, VALUES, depth, BUDGET, threads)
                            .expect_err("serial exceeded the budget");
                        assert_eq!(err, serial_err, "{}@{depth} threads={threads}", entry.name);
                    }
                    continue;
                }
            };
            for threads in thread_counts() {
                let par = expand_with(&ma, VALUES, depth, BUDGET, threads)
                    .expect("serial fit the budget");
                assert_eq!(
                    par.runs, serial.runs,
                    "{}@{depth} threads={threads}: run list diverged",
                    entry.name
                );
                assert_eq!(
                    par.table, serial.table,
                    "{}@{depth} threads={threads}: view table diverged",
                    entry.name
                );
                assert_eq!(par.depth, serial.depth);
                assert_eq!(par.values, serial.values);
            }
        }
    }
}

#[test]
fn spaces_and_components_identical_across_worker_counts() {
    for entry in catalog::entries() {
        let ma = entry.build();
        for depth in DEPTHS {
            let Ok(serial) = PrefixSpace::expand(&ma, VALUES, depth, &CFG) else {
                continue;
            };
            for threads in thread_counts() {
                let par = PrefixSpace::expand(&ma, VALUES, depth, &CFG.threads(threads))
                    .expect("serial fit the budget");
                assert_eq!(par.runs(), serial.runs(), "{}@{depth}", entry.name);
                assert_eq!(par.table(), serial.table(), "{}@{depth}", entry.name);
                assert_eq!(par.components(), serial.components(), "{}@{depth}", entry.name);
                assert_eq!(par.stats(), serial.stats(), "{}@{depth}", entry.name);
            }
        }
    }
}

#[test]
fn ladder_rungs_identical_across_worker_counts() {
    for entry in catalog::entries() {
        let ma = entry.build();
        let Ok(mut serial) = PrefixSpace::expand(&ma, VALUES, 1, &CFG) else {
            continue;
        };
        let mut parallel: Vec<(usize, PrefixSpace)> =
            thread_counts().into_iter().map(|t| (t, serial.clone())).collect();
        for depth in 2..=4 {
            let Ok(next) = serial.extend_from(&ma, &CFG) else {
                break;
            };
            serial = next;
            for (threads, space) in &mut parallel {
                *space = space
                    .extend_from(&ma, &CFG.threads(*threads))
                    .expect("serial extension fit the budget");
                assert_eq!(space.runs(), serial.runs(), "{}@{depth} t={threads}", entry.name);
                assert_eq!(space.table(), serial.table(), "{}@{depth} t={threads}", entry.name);
                assert_eq!(
                    space.components(),
                    serial.components(),
                    "{}@{depth} t={threads}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn fingerprint_cache_trajectory_identical_across_worker_counts() {
    // The cache keyed by structural adversary fingerprints must follow the
    // exact same hit/build/ladder trajectory whichever engine fills it, and
    // serve identical spaces.
    let serial = SpaceCache::new();
    let request = |cache: &SpaceCache| {
        let mut spaces = Vec::new();
        for entry in catalog::entries() {
            let ma = entry.build();
            for depth in DEPTHS {
                if let Ok((space, cached)) = cache.space_with_meta(&ma, VALUES, depth, BUDGET) {
                    spaces.push((entry.name, depth, space, cached));
                }
            }
        }
        spaces
    };
    let baseline = request(&serial);
    let serial_stats = serial.stats();
    assert!(serial_stats.hits > 0, "catalog aliases must produce fingerprint-cache hits");
    assert!(serial_stats.ladder_hits > 0, "ascending depths must ladder");

    for threads in thread_counts() {
        let cache = SpaceCache::with_config(&ExpandConfig::new().threads(threads));
        let spaces = request(&cache);
        assert_eq!(cache.stats(), serial_stats, "threads={threads}: cache trajectory diverged");
        assert_eq!(spaces.len(), baseline.len());
        for ((name, depth, a, ca), (_, _, b, cb)) in baseline.iter().zip(&spaces) {
            assert_eq!(ca, cb, "{name}@{depth} threads={threads}: hit/miss diverged");
            assert_eq!(a.runs(), b.runs(), "{name}@{depth} threads={threads}");
            assert_eq!(a.table(), b.table(), "{name}@{depth} threads={threads}");
            assert_eq!(a.components(), b.components(), "{name}@{depth} threads={threads}");
        }
    }
}

#[test]
fn sweep_records_byte_identical_across_worker_counts() {
    // End-to-end: full-catalog sweep records (verdicts, fingerprints,
    // space stats) are byte-identical modulo wall-clock fields whichever
    // expansion engine the shared cache uses.
    let queries =
        Query::catalog_grid(3, &[AnalysisKind::Solvability, AnalysisKind::ComponentStats]);
    let strip = |report: &consensus_lab::SweepReport| -> Vec<String> {
        report
            .store
            .records()
            .iter()
            .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
            .collect()
    };
    let serial = Session::new().workers(2).check_many(&queries);
    let baseline = strip(&serial);
    for threads in thread_counts() {
        let session = Session::with_configs(
            ExpandConfig::new().threads(threads),
            consensus_lab::AnalysisConfig::default(),
            consensus_lab::CacheConfig::default(),
        )
        .unwrap()
        .workers(2);
        let report = session.check_many(&queries);
        assert_eq!(strip(&report), baseline, "threads={threads}: sweep records diverged");
        // Raw hit/build splits are scheduling-dependent (two sweep workers
        // racing one key both build; the loser's space is dropped), but
        // the total request count is not.
        assert_eq!(
            report.cache.requests(),
            serial.cache.requests(),
            "threads={threads}: cache request count diverged"
        );
        if threads > 1 {
            assert!(
                report.expand.shards > report.expand.passes,
                "threads={threads}: expected sharded passes"
            );
        }
    }
}
