//! Property tests for the lab subsystem: sweep determinism and
//! cache-transparency (ISSUE 1 acceptance criteria).

use consensus_lab::json::Value;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;

const MAX_DEPTH: usize = 3;

/// Same scenario grid ⇒ byte-identical JSONL modulo timing fields, across
/// runs and across thread counts.
#[test]
fn sweep_is_deterministic_modulo_timing() {
    let queries = Query::catalog_grid(MAX_DEPTH, &AnalysisKind::ALL);
    let runs: Vec<String> = [1usize, 4, 1]
        .into_iter()
        .map(|threads| {
            let report = Session::new().workers(threads).check_many(&queries);
            report
                .store
                .records()
                .iter()
                .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1-thread vs 4-thread sweeps must agree");
    assert_eq!(runs[0], runs[2], "repeated sweeps must agree");
    // The raw JSONL differs only in the timing fields.
    let report = Session::new().workers(2).check_many(&queries);
    for line in report.store.to_jsonl().lines() {
        let v = consensus_lab::json::parse(line).expect("store emits valid JSON");
        assert!(v.get("wall_ms").is_some(), "every record carries timing");
    }
}

/// Cached and uncached runs agree on every verdict: a warm cache changes
/// construction counts, never results.
#[test]
fn cached_and_uncached_sweeps_agree_on_every_verdict() {
    let queries = Query::catalog_grid(MAX_DEPTH, &AnalysisKind::ALL);

    let session = Session::new().workers(2);
    let cold = session.check_many(&queries);
    // Re-run on the same (now warm) session: every space request hits.
    let warm = session.check_many(&queries);

    let strip = |records: &[consensus_lab::ScenarioRecord]| -> Vec<Value> {
        records
            .iter()
            .map(|r| r.to_json().without_keys(&["wall_ms", "cached_space"]))
            .collect()
    };
    assert_eq!(
        strip(cold.store.records()),
        strip(warm.store.records()),
        "verdicts must not depend on cache temperature"
    );

    let stats = session.space_cache().stats();
    assert_eq!(stats.builds, cold.cache.builds, "the warm pass must not build a single new space");
    // The acceptance telemetry: strictly fewer constructions than scenarios.
    assert!(
        stats.builds < queries.len(),
        "constructions ({}) must undercut scenarios ({})",
        stats.builds,
        queries.len()
    );
}

/// The structural-alias property: catalog entries that denote the same
/// adversary (sw-lossy-link vs all-rooted-2) produce identical analysis
/// results and share cache slots.
#[test]
fn structural_aliases_share_results_and_cache_slots() {
    use consensus_lab::scenario::AdversarySpec;
    let queries = Query::grid(
        &[AdversarySpec::catalog("sw-lossy-link"), AdversarySpec::catalog("all-rooted-2")],
        2,
        &[AnalysisKind::Bivalence, AnalysisKind::ComponentStats],
    );
    let session = Session::new().workers(1);
    let report = session.check_many(&queries);
    let records = report.store.records();
    let half = records.len() / 2;
    for (a, b) in records[..half].iter().zip(&records[half..]) {
        assert_eq!(a.fingerprint, b.fingerprint, "aliases share fingerprints");
        assert_eq!(
            a.outcome, b.outcome,
            "aliases must get identical outcomes ({} vs {})",
            a.adversary, b.adversary
        );
    }
    // 2 depths for the first entry — one from-scratch build at depth 1,
    // one ladder extension up to depth 2; the alias's requests all hit.
    let stats = session.space_cache().stats();
    assert_eq!((stats.builds, stats.ladder_hits), (1, 1), "{stats:?}");
}

/// Solvability verdicts from the sweep match the catalog's pinned ground
/// truth at the sweep's deepest resolution.
#[test]
fn sweep_verdicts_match_catalog_ground_truth_at_max_depth() {
    let queries = Query::catalog_grid(4, &[AnalysisKind::Solvability]);
    let report = Session::new().workers(2).check_many(&queries);
    for record in report.store.records() {
        assert_ne!(record.matches_expected, Some(false), "{}", record.adversary);
        if record.depth == 4 {
            // At full depth every pinned entry resolves conclusively.
            let expected = record.expected.expect("catalog entries are pinned");
            let verdict = record.outcome.verdict.as_str();
            match expected {
                Some(true) => assert_eq!(verdict, "solvable", "{}", record.adversary),
                Some(false) => assert_eq!(verdict, "unsolvable", "{}", record.adversary),
                None => assert_eq!(verdict, "undecided", "{}", record.adversary),
            }
        }
    }
}
