//! Config-equivalence of the deprecated `_with` shims (ISSUE 4): every
//! legacy positional path must be **byte-identical** — runs, view tables,
//! components, verdicts, JSONL rows — to the same call expressed through
//! the typed `ExpandConfig`/`Session` facade, across the catalog at depths
//! 1..=3. The shims may then be deleted in the next release without any
//! observable change.
#![allow(deprecated)]

use adversary::catalog;
use consensus_core::config::ExpandConfig;
use consensus_core::solvability::{SolvabilityChecker, Verdict};
use consensus_core::{AnalysisConfig, PrefixSpace};
use consensus_lab::cache::SpaceCache;
use consensus_lab::runner::SweepRunner;
use consensus_lab::scenario::{AnalysisKind, GridBuilder};
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;

const BUDGET: usize = 2_000_000;
const VALUES: &[u32] = &[0, 1];
const DEPTHS: std::ops::RangeInclusive<usize> = 1..=3;
const CFG: ExpandConfig = ExpandConfig { threads: 1, max_runs: BUDGET };

fn assert_same_space(a: &PrefixSpace, b: &PrefixSpace, what: &str) {
    assert_eq!(a.runs(), b.runs(), "{what}: run list diverged");
    assert_eq!(a.table(), b.table(), "{what}: view table diverged");
    assert_eq!(a.components(), b.components(), "{what}: components diverged");
    assert_eq!(a.stats(), b.stats(), "{what}: stats diverged");
}

/// `build`/`build_with` ≡ `expand`, serial and sharded, over the catalog.
#[test]
fn deprecated_builders_match_expand() {
    for entry in catalog::entries() {
        let ma = entry.build();
        for depth in DEPTHS {
            let Ok(new) = PrefixSpace::expand(&ma, VALUES, depth, &CFG) else {
                continue;
            };
            let legacy = PrefixSpace::build(&ma, VALUES, depth, BUDGET).unwrap();
            assert_same_space(&legacy, &new, &format!("{}@{depth} build", entry.name));
            for threads in [2, 8] {
                let legacy_threaded =
                    PrefixSpace::build_with(&ma, VALUES, depth, BUDGET, threads).unwrap();
                let new_threaded =
                    PrefixSpace::expand(&ma, VALUES, depth, &CFG.threads(threads)).unwrap();
                assert_same_space(
                    &legacy_threaded,
                    &new_threaded,
                    &format!("{}@{depth} build_with({threads})", entry.name),
                );
            }
        }
    }
}

/// `extended`/`extended_with`/`extended_from`/`extended_from_with` ≡
/// `extend`/`extend_from` rung by rung.
#[test]
fn deprecated_extensions_match_extend() {
    for entry in catalog::entries() {
        let ma = entry.build();
        let Ok(base) = PrefixSpace::expand(&ma, VALUES, 1, &CFG) else {
            continue;
        };
        let mut legacy_owned = base.clone();
        let mut new_owned = base.clone();
        let mut rung = base;
        for depth in DEPTHS.skip(1) {
            let Ok(new_borrowed) = rung.extend_from(&ma, &CFG) else {
                break;
            };
            let legacy_borrowed = rung.extended_from(&ma, BUDGET).unwrap();
            assert_same_space(
                &legacy_borrowed,
                &new_borrowed,
                &format!("{}@{depth} extended_from", entry.name),
            );
            let legacy_sharded = rung.extended_from_with(&ma, BUDGET, 4).unwrap();
            assert_same_space(
                &legacy_sharded,
                &new_borrowed,
                &format!("{}@{depth} extended_from_with", entry.name),
            );
            legacy_owned = legacy_owned.extended(&ma, BUDGET).unwrap();
            new_owned = new_owned.extend(&ma, &CFG).unwrap();
            assert_same_space(
                &legacy_owned,
                &new_owned,
                &format!("{}@{depth} extended", entry.name),
            );
            let legacy_owned_sharded = legacy_owned.clone().extended_with(&ma, BUDGET, 4).unwrap();
            if let Ok(one_deeper) = new_owned.clone().extend(&ma, &CFG) {
                assert_same_space(
                    &legacy_owned_sharded,
                    &one_deeper,
                    &format!("{}@{depth} extended_with", entry.name),
                );
            }
            rung = new_borrowed;
        }
    }
}

/// The deprecated `expand_threads` checker knob ≡ an `ExpandConfig` passed
/// to `with_config`: identical verdict shapes over the catalog.
#[test]
fn deprecated_checker_knob_matches_config() {
    for entry in catalog::entries() {
        let legacy = SolvabilityChecker::new(entry.build())
            .max_depth(3)
            .max_runs(BUDGET)
            .expand_threads(4)
            .check();
        let configured = SolvabilityChecker::with_config(
            entry.build(),
            AnalysisConfig::new().max_depth(3),
            ExpandConfig { threads: 4, max_runs: BUDGET },
        )
        .check();
        match (&legacy, &configured) {
            (Verdict::Solvable(a), Verdict::Solvable(b)) => {
                assert_eq!(a.depth, b.depth, "{}", entry.name);
                assert_eq!(a.component_count, b.component_count, "{}", entry.name);
            }
            (Verdict::Unsolvable(_), Verdict::Unsolvable(_)) => {}
            (Verdict::Undecided(a), Verdict::Undecided(b)) => {
                assert_eq!(a.max_depth, b.max_depth, "{}", entry.name);
                assert_eq!(a.mixed_components, b.mixed_components, "{}", entry.name);
                assert_eq!(a.chain.is_some(), b.chain.is_some(), "{}", entry.name);
            }
            (a, b) => panic!("{}: verdicts diverged: {a:?} vs {b:?}", entry.name),
        }
    }
}

/// `SpaceCache::with_threads` ≡ `SpaceCache::with_config`: same spaces,
/// same hit/build/ladder trajectory.
#[test]
fn deprecated_cache_constructor_matches_config() {
    let legacy = SpaceCache::with_threads(4);
    let configured = SpaceCache::with_config(&ExpandConfig::new().threads(4));
    for entry in catalog::entries() {
        let ma = entry.build();
        for depth in DEPTHS {
            let a = legacy.space_with_meta(&ma, VALUES, depth, BUDGET);
            let b = configured.space_with_meta(&ma, VALUES, depth, BUDGET);
            match (a, b) {
                (Ok((a, ca)), Ok((b, cb))) => {
                    assert_eq!(ca, cb, "{}@{depth}", entry.name);
                    assert_same_space(&a, &b, &format!("{}@{depth} cache", entry.name));
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{}@{depth}", entry.name),
                (a, b) => panic!("{}@{depth}: {a:?} vs {b:?}", entry.name),
            }
        }
    }
    assert_eq!(legacy.stats(), configured.stats(), "cache trajectories diverged");
}

/// The deprecated runner path (`SweepRunner::threads` over a scenario
/// grid) produces byte-identical JSONL rows, modulo timing fields, to the
/// same grid answered through `Session::check_many`.
#[test]
fn deprecated_runner_path_matches_session() {
    let grid = GridBuilder::new(*DEPTHS.end(), BUDGET).over_catalog();
    let legacy = SweepRunner::new().threads(2).run(&grid, &SpaceCache::new());

    let queries = Query::catalog_grid(*DEPTHS.end(), &AnalysisKind::ALL);
    let session = Session::new().workers(2);
    let modern = session.check_many(&queries);

    let strip = |report: &consensus_lab::SweepReport| -> Vec<String> {
        report
            .store
            .records()
            .iter()
            .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
            .collect()
    };
    assert_eq!(strip(&legacy), strip(&modern), "legacy and Session sweeps diverged");
    assert_eq!(legacy.cache.requests(), modern.cache.requests());
}
