//! Catalog-wide verdict sweep, dynamic-diameter metrics, and deep sampled
//! verification of synthesized algorithms.

use adversary::{catalog, GeneralMA, MessageAdversary};
use consensus_core::solvability::{SolvabilityChecker, Verdict};
use dyngraph::{generators, metrics, Digraph};
use rand::SeedableRng;
use simulator::checker;

#[test]
fn catalog_verdicts_match_literature() {
    // (name, expected: Some(true)=solvable, Some(false)=exact-unsolvable,
    //  None=limit-only impossibility → Undecided with evidence)
    let entries: Vec<(&str, GeneralMA, Option<bool>)> = vec![
        ("santoro_widmayer", catalog::santoro_widmayer_lossy_link(), None),
        ("cgp_reduced", catalog::cgp_reduced_lossy_link(), Some(true)),
        ("rotating_star3", catalog::rotating_star(3), Some(true)),
        ("message_loss(2,0)", catalog::message_loss(2, 0), Some(true)),
        ("message_loss(2,1)", catalog::message_loss(2, 1), None),
        ("message_loss(2,2)", catalog::message_loss(2, 2), Some(false)),
        ("vssc(2,2,by3)", catalog::vssc(2, 2, Some(3)), Some(true)),
        (
            "eventually_bidirectional_by2",
            catalog::eventually_bidirectional().with_deadline(2),
            Some(true),
        ),
    ];
    for (name, ma, expected) in entries {
        let verdict = SolvabilityChecker::new(ma).max_depth(5).max_runs(4_000_000).check();
        match (expected, &verdict) {
            (Some(true), Verdict::Solvable(_)) => {}
            (Some(false), Verdict::Unsolvable(_)) => {}
            (None, Verdict::Undecided(rep)) => {
                assert!(rep.mixed_components >= 1, "{name}");
                assert!(rep.chain.is_some(), "{name}");
            }
            (exp, got) => panic!("{name}: expected {exp:?}, got {got:?}"),
        }
    }
}

#[test]
fn all_rooted_n2_equals_lossy_link() {
    let rooted = catalog::all_rooted(2);
    let lossy = catalog::santoro_widmayer_lossy_link();
    assert_eq!(rooted.pool(), lossy.pool());
}

#[test]
fn dynamic_diameter_explains_vssc_threshold() {
    // Within a vertex-stable window the root members broadcast in at most
    // D rounds, where D is the worst case over stable-mask pools. For the
    // n = 2 lossy link pool restricted to a fixed root mask the diameter is
    // 1; the VSSC threshold window = 2 = D + 1 matches [23].
    for (token, p) in [("->", 0usize), ("<-", 1usize)] {
        let pool = vec![Digraph::parse2(token).unwrap()];
        assert_eq!(metrics::worst_case_broadcast(&pool, p), Some(1));
    }
    // The full pool lets the adversary silence either process forever.
    assert_eq!(metrics::dynamic_diameter(&generators::lossy_link_full()), None);
}

#[test]
fn common_kernel_bound_matches_checker_decision_round() {
    // Pool with common kernel member 0 and worst-case broadcast 2: the
    // synthesized universal algorithm decides within a couple rounds of it.
    let g1 = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let g2 = generators::star_out(3, 0);
    let pool = vec![g1, g2];
    let (p, bound) = metrics::common_kernel_broadcast_bound(&pool).unwrap();
    assert_eq!(p, 0);
    assert_eq!(bound, 2);
    let verdict = SolvabilityChecker::new(GeneralMA::oblivious(pool))
        .max_depth(4)
        .max_runs(4_000_000)
        .check();
    match verdict {
        Verdict::Solvable(cert) => {
            assert!(cert.depth <= bound + 1, "depth {} vs bound {bound}", cert.depth);
        }
        other => panic!("expected solvable: {other:?}"),
    }
}

#[test]
fn sampled_deep_verification_of_synthesized_algorithms() {
    // Exhaustive checking stops at the synthesis depth; sampling probes
    // depth 25 across several solvable adversaries.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let families: Vec<GeneralMA> = vec![
        catalog::cgp_reduced_lossy_link(),
        catalog::rotating_star(3),
        GeneralMA::oblivious(vec![Digraph::complete(3)]),
    ];
    for ma in families {
        let verdict = SolvabilityChecker::new(ma.clone()).max_depth(3).max_runs(4_000_000).check();
        let cert = match verdict {
            Verdict::Solvable(cert) => cert,
            other => panic!("expected solvable: {other:?}"),
        };
        let report = checker::check_consensus_sampled(
            &cert.algorithm,
            &ma,
            &[0, 1],
            25,
            150,
            true,
            &mut rng,
        );
        assert!(report.passed(), "{}: {:?}", ma.describe(), report.violations);
        assert_eq!(report.undecided_runs, 0);
    }
}

#[test]
fn forever_directional_union_catalog() {
    let ma = catalog::forever_directional();
    let space = consensus_core::PrefixSpace::expand(
        &ma,
        &[0, 1],
        2,
        &consensus_core::ExpandConfig::with_budget(10_000),
    )
    .unwrap();
    assert!(space.separation().is_separated());
    assert!(space.all_components_broadcastable());
}

#[test]
fn stabilizing_stars_n3_window_two() {
    // ◇stable over the rotating-star pool on 3 processes: a stable window
    // of 2 rounds means the same center broadcasts twice — its value is
    // common knowledge within the window (center diameter D = 1, so
    // window = D + 1 = 2 suffices, mirroring [23] at n = 3).
    let pool = generators::all_out_stars(3);
    let ma = GeneralMA::stabilizing(pool.clone(), 2, Some(2));
    let verdict = SolvabilityChecker::new(ma).max_depth(4).max_runs(4_000_000).check();
    assert!(verdict.is_solvable(), "{verdict:?}");
    // Window 1 degrades to the plain rotating-star adversary — which is
    // itself solvable (round-1 center common knowledge), so unlike the
    // lossy link the degradation stays solvable here.
    let ma = GeneralMA::stabilizing(pool, 1, Some(2));
    let verdict = SolvabilityChecker::new(ma).max_depth(3).max_runs(4_000_000).check();
    assert!(verdict.is_solvable(), "{verdict:?}");
    // And the per-center window diameter is exactly 1.
    for c in 0..3 {
        let center_pool = vec![generators::star_out(3, c)];
        assert_eq!(metrics::worst_case_broadcast(&center_pool, c), Some(1));
    }
}

#[test]
fn vssc_rooted_pool_n2_window_sweep() {
    // vssc(2, k, by R) over all rooted 2-graphs: the window threshold at
    // k = 2 (= D + 1), per [23].
    let solvable = SolvabilityChecker::new(catalog::vssc(2, 2, Some(2)))
        .max_depth(4)
        .max_runs(4_000_000)
        .check();
    assert!(solvable.is_solvable(), "{solvable:?}");
    let mixed = SolvabilityChecker::new(catalog::vssc(2, 1, Some(2)))
        .max_depth(4)
        .max_runs(4_000_000)
        .check();
    match mixed {
        Verdict::Undecided(rep) => assert!(rep.mixed_components >= 1),
        other => panic!("vssc window 1 should stay mixed: {other:?}"),
    }
}
