//! Tracing must be a pure observer: a sweep run with the tracer enabled
//! produces **byte-identical** records, modulo timing fields, to the same
//! sweep untraced — and the trace it leaves behind validates against the
//! span schema with well-formed parent/child nesting.
//!
//! The tracer is process-global, so the traced and untraced passes run
//! sequentially inside one test, and the tests in this file serialize
//! against each other through [`serial`] (cargo runs a binary's tests on
//! concurrent threads against the same global tracer).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use consensus_cluster::coordinator::{self, ClusterConfig};
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::trace::{validate, TraceSpan};
use consensus_obs::trace::tracer;
use consensus_serve::api::App;
use consensus_serve::server::{ServeConfig, Server};

const DEPTH: usize = 3;

/// One tracer owner at a time; a panicked holder must not wedge the rest.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sweep_rows() -> Vec<String> {
    let queries = Query::catalog_grid(DEPTH, &AnalysisKind::ALL);
    let report = Session::new().workers(2).check_many(&queries);
    report
        .store
        .records()
        .iter()
        .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
        .collect()
}

#[test]
fn traced_sweep_is_byte_identical_and_schema_valid() {
    let _guard = serial();
    tracer().disable();
    let _ = tracer().drain();
    let untraced = sweep_rows();

    tracer().enable();
    let traced = sweep_rows();
    let spans = tracer().drain();
    tracer().disable();

    assert_eq!(untraced, traced, "tracing changed the sweep's records");
    assert!(!untraced.is_empty());

    // The emitted trace round-trips through the JSONL schema validator.
    let jsonl: String = spans.iter().map(|s| format!("{}\n", s.to_jsonl())).collect();
    let summary = validate(&jsonl).unwrap_or_else(|e| panic!("trace failed validation: {e}"));
    assert_eq!(summary.spans, spans.len());
    assert!(summary.roots >= 1, "the sweep span is a root");

    // The span inventory covers the whole stack: the sweep root, the
    // analysis workers under it, and the cache/expansion spans they open.
    let parsed: Vec<TraceSpan> = jsonl.lines().map(|l| TraceSpan::parse(l).unwrap()).collect();
    let count = |name: &str| parsed.iter().filter(|s| s.name == name).count();
    assert_eq!(count("sweep"), 1);
    assert!(count("analysis.solvability") > 0);
    assert!(count("cache.lookup") > 0);
    assert!(count("expand") > 0);
    assert!(count("components") > 0);

    // Cross-thread parenting: every analysis span hangs off the sweep
    // root, not off whatever worker thread happened to run it.
    let sweep_id = parsed.iter().find(|s| s.name == "sweep").unwrap().id;
    for span in parsed.iter().filter(|s| s.name.starts_with("analysis.")) {
        assert_eq!(span.parent, Some(sweep_id), "{} not parented to sweep", span.name);
    }
}

/// The cluster path under the same purity bar: a traced 2-worker
/// coordinator sweep must merge records byte-identical (modulo timing)
/// to the untraced run and the serial reference, and its merged trace
/// must validate with every `cluster.shard` span parented under the
/// `cluster.sweep` root and carrying the worker-side `http.request`
/// span that served it (propagated through `x-consensus-trace`; the
/// workers here share the process tracer, so the context resolves to a
/// true local parent and nothing needs stitching).
#[test]
fn traced_cluster_sweep_is_byte_identical_and_parents_worker_spans() {
    let _guard = serial();
    let servers: Vec<Server> = (0..2)
        .map(|_| {
            let cfg =
                ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
            Server::bind(Arc::new(App::new(Session::new())), &cfg).expect("bind ephemeral worker")
        })
        .collect();
    let cfg = ClusterConfig {
        workers: servers.iter().map(|s| s.local_addr().to_string()).collect(),
        max_depth: 2,
        analyses: vec![AnalysisKind::Solvability, AnalysisKind::ComponentStats],
        retries: 1,
        backoff: Duration::from_millis(5),
        deadline: Duration::from_secs(10),
        ..ClusterConfig::default()
    };
    let rows = |records: &[consensus_lab::store::ScenarioRecord]| -> Vec<String> {
        records
            .iter()
            .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
            .collect()
    };

    tracer().disable();
    let _ = tracer().drain();
    let untraced = coordinator::run(&cfg).expect("untraced cluster sweep");

    tracer().enable();
    let traced = coordinator::run(&cfg).expect("traced cluster sweep");
    let spans = tracer().drain();
    tracer().disable();

    let serial = Session::new().check_many(&Query::catalog_grid(cfg.max_depth, &cfg.analyses));
    let serial_rows = rows(serial.store.records());
    assert_eq!(rows(&traced.records), rows(&untraced.records), "tracing changed the merge");
    assert_eq!(rows(&traced.records), serial_rows, "cluster diverged from the serial reference");

    // In-process workers share this tracer: their spans are already
    // home, so the stitcher must leave them alone (stitching them too
    // would duplicate every worker span).
    assert_eq!(traced.stats.spans_stitched, 0);
    assert!(traced.stitched_spans.is_empty());

    let jsonl: String = spans.iter().map(|s| format!("{}\n", s.to_jsonl())).collect();
    let summary = validate(&jsonl).unwrap_or_else(|e| panic!("trace failed validation: {e}"));
    assert_eq!(summary.spans, spans.len());

    let parsed: Vec<TraceSpan> = jsonl.lines().map(|l| TraceSpan::parse(l).unwrap()).collect();
    let sweep_id = parsed.iter().find(|s| s.name == "cluster.sweep").expect("sweep root").id;
    let shards: Vec<&TraceSpan> = parsed.iter().filter(|s| s.name == "cluster.shard").collect();
    assert_eq!(shards.len(), traced.stats.shards, "one shard span per planned shard");
    for shard in &shards {
        assert_eq!(shard.parent, Some(sweep_id), "shard spans hang off the sweep root");
        let served = parsed
            .iter()
            .filter(|s| s.name == "http.request" && s.parent == Some(shard.id))
            .count();
        assert!(
            served > 0,
            "shard span {} carries the worker-side http.request that served it",
            shard.id
        );
    }
    for server in servers {
        server.stop();
    }
}
