//! Tracing must be a pure observer: a sweep run with the tracer enabled
//! produces **byte-identical** records, modulo timing fields, to the same
//! sweep untraced — and the trace it leaves behind validates against the
//! span schema with well-formed parent/child nesting.
//!
//! The tracer is process-global, so the traced and untraced passes run
//! sequentially inside one test (not as separate `#[test]`s, which cargo
//! would run on concurrent threads against the same global tracer).

use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::trace::{validate, TraceSpan};
use consensus_obs::trace::tracer;

const DEPTH: usize = 3;

fn sweep_rows() -> Vec<String> {
    let queries = Query::catalog_grid(DEPTH, &AnalysisKind::ALL);
    let report = Session::new().workers(2).check_many(&queries);
    report
        .store
        .records()
        .iter()
        .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
        .collect()
}

#[test]
fn traced_sweep_is_byte_identical_and_schema_valid() {
    tracer().disable();
    let _ = tracer().drain();
    let untraced = sweep_rows();

    tracer().enable();
    let traced = sweep_rows();
    let spans = tracer().drain();
    tracer().disable();

    assert_eq!(untraced, traced, "tracing changed the sweep's records");
    assert!(!untraced.is_empty());

    // The emitted trace round-trips through the JSONL schema validator.
    let jsonl: String = spans.iter().map(|s| format!("{}\n", s.to_jsonl())).collect();
    let summary = validate(&jsonl).unwrap_or_else(|e| panic!("trace failed validation: {e}"));
    assert_eq!(summary.spans, spans.len());
    assert!(summary.roots >= 1, "the sweep span is a root");

    // The span inventory covers the whole stack: the sweep root, the
    // analysis workers under it, and the cache/expansion spans they open.
    let parsed: Vec<TraceSpan> = jsonl.lines().map(|l| TraceSpan::parse(l).unwrap()).collect();
    let count = |name: &str| parsed.iter().filter(|s| s.name == name).count();
    assert_eq!(count("sweep"), 1);
    assert!(count("analysis.solvability") > 0);
    assert!(count("cache.lookup") > 0);
    assert!(count("expand") > 0);
    assert!(count("components") > 0);

    // Cross-thread parenting: every analysis span hangs off the sweep
    // root, not off whatever worker thread happened to run it.
    let sweep_id = parsed.iter().find(|s| s.name == "sweep").unwrap().id;
    for span in parsed.iter().filter(|s| s.name.starts_with("analysis.")) {
        assert_eq!(span.parent, Some(sweep_id), "{} not parented to sweep", span.name);
    }
}
