//! The persistent-cache and shard/merge acceptance properties (ISSUE 2):
//! a warm-disk sweep in a "new process" (a fresh `Session` over the same
//! cache directory, with a cold space cache) performs **zero** full
//! expansions; shard slices merge back into the unsharded report; resume
//! re-executes only what is missing.

use std::fs;
use std::path::PathBuf;

use consensus_lab::scenario::{AnalysisKind, Shard};
use consensus_lab::session::{Query, Session};
use consensus_lab::store::{parse_records, ScenarioRecord, TIMING_FIELDS};
use consensus_lab::{AnalysisConfig, CacheConfig, ExpandConfig};

const MAX_DEPTH: usize = 3;
const BUDGET: usize = 2_000_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("consensus-lab-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn session(cache: CacheConfig) -> Session {
    Session::with_configs(ExpandConfig::with_budget(BUDGET), AnalysisConfig::default(), cache)
        .expect("cache dir must open")
        .workers(2)
}

fn indexed(queries: &[Query]) -> Vec<(usize, Query)> {
    queries.iter().cloned().enumerate().collect()
}

fn rows(records: &[ScenarioRecord]) -> Vec<String> {
    records
        .iter()
        .map(|r| r.to_json().without_keys(TIMING_FIELDS).to_string())
        .collect()
}

/// The headline acceptance criterion: a second sweep over the same cache
/// directory, in a fresh process (modeled by a fresh `Session` instance
/// with a cold space cache), answers every scenario from disk — zero full
/// expansions, zero ladder extensions — with identical results.
#[test]
fn warm_disk_sweep_performs_zero_expansions() {
    let dir = tmp_dir("warm-disk");
    let queries = Query::catalog_grid(MAX_DEPTH, &AnalysisKind::ALL);

    let cold_session = session(CacheConfig::new().disk_dir(&dir));
    let cold = cold_session.check_many(&queries);
    assert!(cold.cache.builds > 0, "cold pass must expand something");
    assert!(cold_session.disk_cache().expect("configured").stores() > 0, "must journal");
    drop(cold_session);

    // "Second process": everything in-memory is gone; only the directory
    // survives.
    let warm_session = session(CacheConfig::new().disk_dir(&dir));
    let warm_disk = warm_session.disk_cache().expect("configured");
    assert_eq!(warm_disk.loaded(), warm_disk.len(), "journal reloads completely");
    let warm = warm_session.check_many(&queries);

    let stats = warm.cache;
    assert_eq!(stats.builds, 0, "warm-disk sweep must perform 0 full expansions: {stats:?}");
    assert_eq!(stats.ladder_hits, 0, "warm-disk sweep must not even ladder: {stats:?}");
    assert_eq!(stats.disk_hits, queries.len(), "every scenario answered from disk: {stats:?}");
    assert_eq!(
        rows(cold.store.records()),
        rows(warm.store.records()),
        "disk cache must be invisible in the results"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Shard slices of the grid, merged by global index, reproduce the
/// unsharded sweep's records exactly (modulo timing fields).
#[test]
fn sharded_sweeps_merge_into_the_unsharded_report() {
    let queries = Query::catalog_grid(MAX_DEPTH, &AnalysisKind::ALL);
    let entries = indexed(&queries);
    let full = session(CacheConfig::default()).check_many(&queries);

    let mut merged: Vec<ScenarioRecord> = Vec::new();
    for i in 0..2 {
        let shard = Shard { index: i, count: 2 };
        let slice = shard.select(&entries);
        assert!(!slice.is_empty());
        let report = session(CacheConfig::default()).check_many_indexed(&slice);
        // Records carry their global grid indices.
        for (record, (global, _)) in report.store.records().iter().zip(&slice) {
            assert_eq!(record.index, *global);
        }
        merged.extend(report.store.records().iter().cloned());
    }
    merged.sort_by_key(|r| r.index);
    assert_eq!(
        rows(&merged),
        rows(full.store.records()),
        "merged shards must equal the full sweep"
    );
}

/// Resume semantics at the store level: records parsed back from JSONL are
/// the records that were written, so a resumed sweep can splice them in
/// place of re-execution.
#[test]
fn results_jsonl_roundtrips_for_resume() {
    let queries = Query::catalog_grid(2, &AnalysisKind::ALL);
    let report = session(CacheConfig::default()).check_many(&queries);
    let jsonl = report.store.to_jsonl();
    let parsed = parse_records(&jsonl).expect("store output must parse back");
    assert_eq!(parsed.len(), report.store.records().len());
    for (a, b) in parsed.iter().zip(report.store.records()) {
        assert_eq!(a, b, "parsed record must equal the original");
        assert_eq!(a.identity(), b.identity());
    }
    // Byte-stable re-emission: what merge/resume write is what a direct
    // sweep would have written.
    let again: String = parsed.iter().map(|r| format!("{}\n", r.to_json())).collect();
    assert_eq!(again, jsonl);
}

/// A warm disk cache keeps serving after a partial (sharded) cold pass:
/// only the other shard's scenarios expand anything.
#[test]
fn disk_cache_composes_with_sharding() {
    let dir = tmp_dir("shard-disk");
    let queries = Query::catalog_grid(2, &AnalysisKind::ALL);
    let entries = indexed(&queries);
    let half = Shard { index: 0, count: 2 }.select(&entries);

    session(CacheConfig::new().disk_dir(&dir)).check_many_indexed(&half);
    // A fresh session over the same directory reloads the journal.
    let report = session(CacheConfig::new().disk_dir(&dir)).check_many_indexed(&entries);
    // The warmed half hits disk; structural aliases can push hits above
    // the strict shard size, never below.
    assert!(
        report.cache.disk_hits >= half.len(),
        "warmed shard must be served from disk: {:?}",
        report.cache
    );
    assert!(report.cache.builds > 0, "the cold shard still expands");
    let _ = fs::remove_dir_all(&dir);
}
