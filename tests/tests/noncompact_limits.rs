//! Non-compact adversaries and their excluded limits (experiments F5, T9).

use adversary::{limit, GeneralMA, MessageAdversary, UnionMA};
use consensus_core::{analysis, fair, space::PrefixSpace};
use dyngraph::{generators, Digraph, Lasso};
use ptgraph::contamination;

/// F5: for the non-compact ◇stable(2), the decision classes touch at every
/// depth while the compact approximations separate — the Fig. 4/Fig. 5
/// contrast, quantified.
#[test]
fn compact_vs_noncompact_class_distance() {
    use ptgraph::distance::Distance;
    // Non-compact: touching at every depth.
    let nc = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    for rep in analysis::depth_sweep(&nc, &[0, 1], 3, 2_000_000) {
        assert!(matches!(rep.min_class_distance.unwrap(), Distance::Below(_)));
        assert!(!rep.separated);
    }
    // Compact approximation with deadline 2: separated at depth ≥ 2 with a
    // positive class distance.
    let compact = nc.with_deadline(2);
    let space = PrefixSpace::expand(&compact, &[0, 1], 3, &consensus_core::ExpandConfig::default())
        .unwrap();
    let rep = analysis::report(&space);
    assert!(rep.separated);
    assert!(matches!(rep.min_class_distance.unwrap(), Distance::Finite(_)));
}

/// T9: excluded limits of the eventually-swap adversary are exactly the
/// swap-free sequences, and each comes with a converging family of
/// admissible witnesses — the fair-sequence structure of Definition 5.16.
#[test]
fn eventually_swap_excluded_limits_with_witnesses() {
    let ma = GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        Digraph::parse2("<->").unwrap(),
        None,
    );
    let excluded = limit::excluded_limits(&ma, 0, 1, 4);
    assert_eq!(excluded.len(), 2); // →^ω and ←^ω
    for ex in &excluded {
        for (k, w) in ex.witnesses.iter().enumerate() {
            // Witness k+1 agrees with the limit on rounds 1..=k+1; its
            // common-prefix distance to the limit is ≤ 2^{-(k+1)} → 0.
            for t in 1..=(k + 1) {
                assert_eq!(w.graph_at(t), ex.limit.graph_at(t));
            }
            assert_eq!(ma.admits_lasso(w), Some(true));
        }
        assert_eq!(ma.admits_lasso(&ex.limit), Some(false));
    }
}

/// The stabilizing adversary excludes the alternating sequences; the
/// witnesses converge to them (the forever-bivalent run of [23]'s
/// impossibility for short windows lives exactly there).
#[test]
fn stabilizing_excluded_alternation() {
    let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    let excluded = limit::excluded_limits(&ma, 0, 2, 3);
    let alternating: Vec<&limit::ExcludedLimit> = excluded
        .iter()
        .filter(|e| e.limit.cycle_len() == 2 && e.limit.graph_at(1) != e.limit.graph_at(2))
        .collect();
    assert!(!alternating.is_empty());
    for ex in alternating {
        assert_eq!(ma.admits_lasso(&ex.limit), Some(false));
    }
}

/// Exact distance-0 structure between witnesses and limits: the runs along
/// a witness family have pairwise-positive distance (they differ once they
/// deviate), yet converge to the limit in d_max — computed exactly via
/// contamination on infinite runs.
#[test]
fn witness_family_converges_exactly() {
    let ma = GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        Digraph::parse2("<->").unwrap(),
        None,
    );
    let excluded = limit::excluded_limits(&ma, 0, 1, 5);
    let ex = &excluded[0];
    let limit_run = ptgraph::InfiniteRun::new(vec![0, 1], ex.limit.clone());
    let mut prev_div = 0;
    for w in &ex.witnesses {
        let wr = ptgraph::InfiniteRun::new(vec![0, 1], w.clone());
        let rep = contamination::analyze_infinite(&limit_run, &wr);
        // Both processes eventually distinguish witness from limit (the
        // witness deviates), and the divergence time grows along the family.
        let div = rep
            .per_process
            .iter()
            .map(|d| match d {
                contamination::Divergence::At(t) => *t,
                other => panic!("expected finite divergence: {other:?}"),
            })
            .min()
            .unwrap();
        assert!(div >= prev_div, "divergence times must not shrink");
        prev_div = div;
    }
    assert!(prev_div >= 3, "later witnesses agree longer with the limit");
}

/// Union adversaries: "forever →" ∪ "forever ←" is compact, solvable via
/// round-1 direction, and its prefix space separates at depth 1.
#[test]
fn union_forever_directional_solvable() {
    let right = GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()]);
    let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").unwrap()]);
    let ma = UnionMA::new(vec![Box::new(right), Box::new(left)]);
    assert!(ma.is_compact());
    let space =
        PrefixSpace::expand(&ma, &[0, 1], 2, &consensus_core::ExpandConfig::with_budget(10_000))
            .unwrap();
    assert!(space.separation().is_separated());
}

/// The no-broadcaster search honors admissibility: for ◇stable(2) the
/// alternating (broadcaster-free?) lassos are inadmissible, and all
/// admissible small lassos have broadcasters — no exact chain.
#[test]
fn stabilizing_has_no_exact_chain() {
    let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, None);
    assert!(fair::no_broadcaster_lasso(&ma, 3).is_none());
}

/// Lasso admissibility sanity for union adversaries.
#[test]
fn union_lasso_admissibility() {
    let right = GeneralMA::oblivious(vec![Digraph::parse2("->").unwrap()]);
    let left = GeneralMA::oblivious(vec![Digraph::parse2("<-").unwrap()]);
    let ma = UnionMA::new(vec![Box::new(right), Box::new(left)]);
    assert_eq!(ma.admits_lasso(&Lasso::parse2("->").unwrap()), Some(true));
    assert_eq!(ma.admits_lasso(&Lasso::parse2("<-").unwrap()), Some(true));
    assert_eq!(ma.admits_lasso(&Lasso::parse2("-> | <-").unwrap()), Some(false));
}
