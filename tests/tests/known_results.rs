//! Ground-truth cross-validation (experiments T1, T2, T5, T8 of DESIGN.md):
//! the topological checker against the known solvability results of the
//! literature.

use adversary::GeneralMA;
use consensus_core::solvability::{SolvabilityChecker, Verdict};
use dyngraph::{generators, Digraph};
use integration_support::{lossy_link_full_ma, lossy_link_reduced_ma, n2_pool_ground_truth};

/// T8: every nonempty `n = 2` oblivious pool resolves, and matches the
/// kernel-class criterion of [8]: `Solvable` where expected; persistent
/// mixing or an exact chain where not.
#[test]
fn all_n2_oblivious_pools_match_ground_truth() {
    for (pool, expected_solvable) in n2_pool_ground_truth() {
        let label: Vec<String> = pool.iter().map(|g| g.to_string()).collect();
        let ma = GeneralMA::oblivious(pool);
        let verdict = SolvabilityChecker::new(ma).max_depth(4).check();
        match (expected_solvable, &verdict) {
            (true, Verdict::Solvable(cert)) => {
                assert!(cert.verification.passed(), "pool {label:?}");
                assert!(cert.broadcast.all_broadcastable(), "pool {label:?}");
            }
            (false, Verdict::Unsolvable(_)) => {}
            (false, Verdict::Undecided(rep)) => {
                // Unsolvable-but-compact families whose impossibility is
                // limit-only (e.g. {←, ↔, →}): persistent mixing + chain.
                assert!(rep.mixed_components >= 1, "pool {label:?}");
                assert!(rep.chain.is_some(), "pool {label:?}");
            }
            (exp, got) => panic!("pool {label:?}: expected solvable={exp}, got {got:?}"),
        }
    }
}

/// T1: Santoro–Widmayer — {←, ↔, →} does not separate, at any depth up to 5.
#[test]
fn santoro_widmayer_never_separates() {
    let verdict = SolvabilityChecker::new(lossy_link_full_ma()).max_depth(5).check();
    match verdict {
        Verdict::Undecided(rep) => {
            assert_eq!(rep.max_depth, 5);
            assert!(rep.mixed_components >= 1);
            assert!(rep.compact);
        }
        other => panic!("expected undecided-with-evidence: {other:?}"),
    }
}

/// T2: the reduced lossy link is solvable at depth 1 with a 1-round
/// universal algorithm, matching [8].
#[test]
fn reduced_lossy_link_solvable_one_round() {
    match SolvabilityChecker::new(lossy_link_reduced_ma()).max_depth(3).check() {
        Verdict::Solvable(cert) => {
            assert_eq!(cert.depth, 1);
            assert_eq!(cert.verification.max_decision_round, 1);
        }
        other => panic!("expected solvable: {other:?}"),
    }
}

/// T5: VSSC-style stabilizing adversaries over the lossy-link pool —
/// window 2 (= D + 1 for n = 2) solvable with a deadline; window 1
/// degrades to the oblivious pool and stays mixed.
#[test]
fn stabilizing_window_threshold() {
    for r in [2usize, 3] {
        let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 2, Some(r));
        let verdict = SolvabilityChecker::new(ma).max_depth(r + 2).max_runs(4_000_000).check();
        assert!(verdict.is_solvable(), "stable(2) by {r}: {verdict:?}");
    }
    let ma = GeneralMA::stabilizing(generators::lossy_link_full(), 1, Some(3));
    let verdict = SolvabilityChecker::new(ma).max_depth(4).check();
    match verdict {
        Verdict::Undecided(rep) => assert!(rep.mixed_components >= 1),
        other => panic!("stable(1) should stay mixed: {other:?}"),
    }
}

/// Santoro–Widmayer general form: `complete_minus_losses(2, 1)` equals the
/// lossy link; with all losses (k = 2) the empty graph joins the pool and
/// the exact distance-0 chain certificate fires.
#[test]
fn complete_minus_losses_families() {
    let fam_k1 = generators::complete_minus_losses(2, 1);
    let ma = GeneralMA::oblivious(fam_k1);
    match SolvabilityChecker::new(ma).max_depth(3).check() {
        Verdict::Undecided(rep) => assert!(rep.mixed_components >= 1),
        other => panic!("k=1 loss family: {other:?}"),
    }
    let fam_k2 = generators::complete_minus_losses(2, 2);
    let ma = GeneralMA::oblivious(fam_k2);
    assert!(SolvabilityChecker::new(ma).max_depth(3).check().is_unsolvable());
}

/// n = 3 families: out-stars (solvable), the complete graph alone
/// (solvable), a pool with an unrooted member (unsolvable, exact chain).
#[test]
fn n3_families() {
    let stars = GeneralMA::oblivious(generators::all_out_stars(3));
    assert!(SolvabilityChecker::new(stars)
        .max_depth(3)
        .max_runs(4_000_000)
        .check()
        .is_solvable());

    let complete = GeneralMA::oblivious(vec![Digraph::complete(3)]);
    assert!(SolvabilityChecker::new(complete).max_depth(3).check().is_solvable());

    let unrooted = Digraph::from_edges(3, &[(0, 1), (1, 0)]).unwrap(); // 2 isolated-ish
    let ma = GeneralMA::oblivious(vec![unrooted, Digraph::complete(3)]);
    assert!(SolvabilityChecker::new(ma).max_depth(3).check().is_unsolvable());
}

/// "Eventually ↔ within R" compact adversaries are solvable for every R:
/// the forced exchange separates valences once the deadline passes.
#[test]
fn eventually_swap_compact_family() {
    for r in [1usize, 2, 3] {
        let ma = GeneralMA::eventually_graph(
            generators::lossy_link_full(),
            Digraph::parse2("<->").unwrap(),
            Some(r),
        );
        let verdict = SolvabilityChecker::new(ma).max_depth(r + 3).max_runs(4_000_000).check();
        assert!(verdict.is_solvable(), "eventually-swap by {r}: {verdict:?}");
    }
}

/// The cycle pool on n = 3: a single strongly connected graph — solvable.
#[test]
fn cycle_pool_solvable() {
    let ma = GeneralMA::oblivious(vec![generators::cycle(3)]);
    match SolvabilityChecker::new(ma).max_depth(4).check() {
        Verdict::Solvable(cert) => {
            // Broadcast needs 2 rounds on the 3-cycle.
            assert!(cert.depth >= 2);
        }
        other => panic!("cycle pool: {other:?}"),
    }
}
