//! End-to-end tests of the `consensus-serve` HTTP service: a real
//! `TcpListener`-backed server driven through the real client, mirroring
//! the CI smoke job — including the two serving acceptance criteria:
//!
//! * a warm server answers a repeated `/v1/check` with **zero** new
//!   prefix-space expansions (asserted via the `/metrics` cache counters),
//! * `/v1/sweep` output is byte-identical to a direct `Session` run
//!   (modulo the scheduling-dependent [`TIMING_FIELDS`]).

use std::sync::Arc;

use consensus_lab::json::{self, Value};
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::{AnalysisConfig, CacheConfig, ExpandConfig};
use consensus_serve::api::App;
use consensus_serve::client::Client;
use consensus_serve::server::{ServeConfig, Server};

fn start(session: Session, threads: usize) -> Server {
    let cfg = ServeConfig { threads, ..ServeConfig::default() };
    Server::bind(Arc::new(App::new(session)), &cfg).expect("bind ephemeral port")
}

fn client(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).expect("connect to test server")
}

fn stripped(value: &Value) -> String {
    value.without_keys(TIMING_FIELDS).to_string()
}

fn cache_counter(client: &mut Client, key: &str) -> usize {
    let metrics = client.get("/metrics").unwrap().json().unwrap();
    metrics.get("cache").unwrap().get_usize(key).unwrap()
}

#[test]
fn served_sweep_is_byte_identical_to_direct_session() {
    let server = start(Session::new(), 2);
    let mut client = client(&server);
    let result = client
        .post_json(
            "/v1/sweep",
            r#"{"catalog":true,"max_depth":2,"analyses":["solvability","component-stats"]}"#,
        )
        .unwrap();
    assert_eq!(result.status, 200, "{}", result.body);
    let payload = result.json().unwrap();
    let Some(Value::Arr(records)) = payload.get("records") else {
        panic!("sweep payload must carry a records array: {}", result.body);
    };

    let queries =
        Query::catalog_grid(2, &[AnalysisKind::Solvability, AnalysisKind::ComponentStats]);
    let direct = Session::new().check_many(&queries);
    assert_eq!(records.len(), direct.store.records().len());
    for (served, direct) in records.iter().zip(direct.store.records()) {
        assert_eq!(stripped(served), stripped(&direct.to_json()));
    }
    drop(client);
    server.stop();
}

#[test]
fn warm_check_performs_zero_new_expansions() {
    let server = start(Session::new(), 2);
    let mut client = client(&server);
    let body = r#"{"adversary":"sw-lossy-link","depth":3,"analysis":"component-stats"}"#;

    let first = client.post_json("/v1/check", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let builds_after_first = cache_counter(&mut client, "builds");
    assert!(builds_after_first > 0, "the first check must expand");
    let hits_after_first = cache_counter(&mut client, "hits");

    for _ in 0..3 {
        let repeat = client.post_json("/v1/check", body).unwrap();
        assert_eq!(repeat.status, 200);
        assert_eq!(
            stripped(&repeat.json().unwrap()),
            stripped(&first.json().unwrap()),
            "repeated checks must answer identically"
        );
    }
    assert_eq!(
        cache_counter(&mut client, "builds"),
        builds_after_first,
        "a warm server must answer repeats with zero new expansions"
    );
    assert!(cache_counter(&mut client, "hits") > hits_after_first);
    drop(client);
    server.stop();
}

#[test]
fn one_keep_alive_connection_serves_every_endpoint() {
    let server = start(Session::new(), 2);
    let mut client = client(&server);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.json().unwrap().get("status").unwrap().as_str(), Some("ok"));

    let catalog = client.get("/v1/catalog").unwrap().json().unwrap();
    let Some(Value::Arr(entries)) = catalog.get("entries") else {
        panic!("catalog must carry entries");
    };
    assert_eq!(entries.len(), adversary::catalog::entries().len());

    let record = client
        .post_json("/v1/check", r#"{"adversary":"cgp-reduced-lossy-link","depth":2}"#)
        .unwrap();
    assert_eq!(record.status, 200);
    assert_eq!(record.json().unwrap().get("verdict").unwrap().as_str(), Some("solvable"));

    let sweep = client
        .post_json(
            "/v1/sweep",
            r#"{"queries":[{"adversary":"sw-lossy-link","depth":1,"analysis":"bivalence"},
                           {"pool":"-> <-","depth":1,"analysis":"bivalence"}]}"#,
        )
        .unwrap();
    assert_eq!(sweep.status, 200, "{}", sweep.body);
    let payload = sweep.json().unwrap();
    let Some(Value::Arr(records)) = payload.get("records") else {
        panic!("records array");
    };
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].get_usize("index"), Some(0));
    assert_eq!(records[1].get_usize("index"), Some(1));

    // Errors are structured and do not poison the connection.
    let missing = client.post_json("/v1/check", r#"{"adversary":"no-such","depth":2}"#).unwrap();
    assert_eq!(missing.status, 400);
    let error = missing.json().unwrap();
    assert_eq!(error.get("error").unwrap().get("kind").unwrap().as_str(), Some("spec"));
    assert_eq!(client.get("/nope").unwrap().status, 404);

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let requests = metrics.get("requests").unwrap();
    assert_eq!(requests.get_usize("healthz"), Some(1));
    assert_eq!(requests.get_usize("catalog"), Some(1));
    assert_eq!(requests.get_usize("check"), Some(2));
    assert_eq!(requests.get_usize("sweep"), Some(1));
    assert_eq!(requests.get_usize("not_found"), Some(1));
    assert_eq!(requests.get_usize("errors"), Some(2));
    assert_eq!(client.reconnects(), 0, "every exchange must ride one keep-alive connection");
    drop(client);
    server.stop();
}

#[test]
fn budget_starved_server_answers_422() {
    let session = Session::with_configs(
        ExpandConfig::with_budget(10),
        AnalysisConfig::default(),
        CacheConfig::default(),
    )
    .unwrap();
    let server = start(session, 1);
    let mut client = client(&server);
    let result = client
        .post_json("/v1/check", r#"{"adversary":"sw-lossy-link","depth":4,"analysis":"bivalence"}"#)
        .unwrap();
    assert_eq!(result.status, 422, "{}", result.body);
    let error = result.json().unwrap();
    assert_eq!(error.get("error").unwrap().get("kind").unwrap().as_str(), Some("budget"));
    assert_eq!(error.get("error").unwrap().get_usize("status"), Some(422));
    drop(client);
    server.stop();
}

#[test]
fn disk_backed_server_restarts_warm() {
    let dir = std::env::temp_dir().join(format!("consensus-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = |resume: bool| {
        Session::with_configs(
            ExpandConfig::default(),
            AnalysisConfig::default(),
            CacheConfig::new().disk_dir(&dir).resume(resume),
        )
        .unwrap()
    };
    let body = r#"{"catalog":true,"max_depth":2,"analyses":["bivalence"]}"#;

    let cold_server = start(session(true), 2);
    let mut cold_client = client(&cold_server);
    let cold = cold_client.post_json("/v1/sweep", body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert!(cache_counter(&mut cold_client, "builds") > 0);
    drop(cold_client);
    cold_server.stop();

    // A second server over the same journal — a process restart — answers
    // the whole grid without a single expansion.
    let warm_server = start(session(true), 2);
    let mut warm_client = client(&warm_server);
    let warm = warm_client.post_json("/v1/sweep", body).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(cache_counter(&mut warm_client, "builds"), 0, "restart must stay warm");
    assert!(cache_counter(&mut warm_client, "disk_hits") > 0);
    let strip_all = |result: &consensus_serve::client::HttpResult| -> Vec<String> {
        let payload = json::parse(&result.body).unwrap();
        let Some(Value::Arr(records)) = payload.get("records") else {
            panic!("records array");
        };
        records.iter().map(stripped).collect()
    };
    assert_eq!(strip_all(&cold), strip_all(&warm));
    drop(warm_client);
    warm_server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_connections_agree_with_each_other() {
    let server = start(Session::new(), 4);
    let addr = server.local_addr().to_string();
    let body = r#"{"adversary":"message-loss-2-2","depth":2,"analysis":"solvability"}"#;
    let mut answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let mut answers = Vec::new();
                    for _ in 0..5 {
                        let result = client.post_json("/v1/check", body).unwrap();
                        assert_eq!(result.status, 200, "{}", result.body);
                        answers.push(stripped(&result.json().unwrap()));
                    }
                    answers
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    answers.dedup();
    assert_eq!(answers.len(), 1, "every connection must see the same record");
    server.stop();
}
