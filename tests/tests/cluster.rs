//! End-to-end tests of the distributed sweep cluster: a coordinator
//! driving real `TcpListener`-backed worker servers through the real
//! HTTP client, covering the three cluster acceptance criteria:
//!
//! * a 2-worker cluster sweep merges to records **byte-identical**
//!   (modulo the scheduling-dependent [`TIMING_FIELDS`]) to a serial
//!   `Session` sweep of the same grid,
//! * killing a worker still completes the sweep with the identical
//!   merged output — its shards rebalance onto the survivors,
//! * a tampered worker verdict is caught by the certificate spot-check,
//! * the observability seam tells the truth: lifecycle events match the
//!   run's counters one-for-one and the fleet snapshot folds every
//!   worker's `/v1/stats`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use consensus_cluster::coordinator::{self, ClusterConfig};
use consensus_cluster::{spotcheck, EventSink};
use consensus_lab::json::Value;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{Query, Session};
use consensus_lab::store::{ScenarioRecord, TIMING_FIELDS};
use consensus_serve::api::App;
use consensus_serve::server::{ServeConfig, Server};

fn start_worker() -> Server {
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServeConfig::default() };
    Server::bind(Arc::new(App::new(Session::new())), &cfg).expect("bind ephemeral worker")
}

fn cluster_config(workers: Vec<String>) -> ClusterConfig {
    ClusterConfig {
        workers,
        max_depth: 2,
        analyses: vec![AnalysisKind::Solvability, AnalysisKind::ComponentStats],
        // Fail fast in tests: a dead worker should cost milliseconds.
        retries: 1,
        backoff: Duration::from_millis(5),
        deadline: Duration::from_secs(10),
        ..ClusterConfig::default()
    }
}

/// The serial reference for the same grid a config sweeps.
fn serial_records(cfg: &ClusterConfig) -> Vec<ScenarioRecord> {
    let grid = Query::catalog_grid(cfg.max_depth, &cfg.analyses);
    Session::new().check_many(&grid).store.records().to_vec()
}

fn assert_identical(merged: &[ScenarioRecord], serial: &[ScenarioRecord]) {
    assert_eq!(merged.len(), serial.len(), "merged grid must be complete");
    for (cluster, serial) in merged.iter().zip(serial) {
        assert_eq!(
            cluster.to_json().without_keys(TIMING_FIELDS),
            serial.to_json().without_keys(TIMING_FIELDS),
            "cluster and serial records must be byte-identical modulo timing"
        );
    }
}

#[test]
fn two_worker_cluster_matches_serial_sweep() {
    let servers = [start_worker(), start_worker()];
    let cfg = cluster_config(servers.iter().map(|s| s.local_addr().to_string()).collect());

    let outcome = coordinator::run(&cfg).expect("cluster sweep over a healthy fleet");
    assert_identical(&outcome.records, &serial_records(&cfg));

    assert_eq!(outcome.stats.workers, 2);
    assert_eq!(outcome.stats.workers_dead, 0);
    assert_eq!(outcome.stats.rebalances, 0);
    assert_eq!(outcome.stats.scenarios, outcome.records.len());
    assert!(outcome.stats.shards >= 2, "two workers plan at least two shards");
    assert!(outcome.stats.spot_checks > 0, "a default run audits at least one verdict");
    assert!(outcome.spot_check_failures.is_empty(), "{:?}", outcome.spot_check_failures);
    for server in servers {
        server.stop();
    }
}

/// A `Write` the test can read back after the sink is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("event buffer").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn lifecycle_events_and_fleet_snapshot_cover_the_run() {
    let servers = [start_worker(), start_worker()];
    let cfg = cluster_config(servers.iter().map(|s| s.local_addr().to_string()).collect());

    let buffer = SharedBuf::default();
    let sink = EventSink::new(Box::new(buffer.clone()));
    let outcome = coordinator::run_with(&cfg, Some(&sink)).expect("cluster sweep with events");
    assert_identical(&outcome.records, &serial_records(&cfg));

    // Every emitted line is whole JSON, and the stream reconciles
    // one-for-one with the run's own counters: no phantom events, no
    // silent drops.
    let text = String::from_utf8(buffer.0.lock().expect("event buffer").clone()).expect("utf-8");
    let events: Vec<Value> = text
        .lines()
        .map(|line| consensus_lab::json::parse(line).expect("whole JSON event line"))
        .collect();
    assert_eq!(events.len(), outcome.stats.events_emitted);
    let count = |kind: &str| {
        events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some(kind))
            .count()
    };
    assert_eq!(count("cluster.dispatched"), outcome.stats.dispatches);
    assert_eq!(count("cluster.completed"), outcome.stats.shards, "every shard completes once");
    assert_eq!(count("cluster.audited"), outcome.stats.spot_checks);
    assert_eq!(count("cluster.retried"), outcome.stats.retries);
    assert_eq!(count("cluster.rebalanced"), 0, "a healthy fleet rebalances nothing");
    for event in &events {
        if event.get("event").and_then(Value::as_str) == Some("cluster.completed") {
            let echoed = event.get("request_id").and_then(Value::as_str).unwrap_or_default();
            assert!(!echoed.is_empty(), "completed events carry the worker's x-request-id echo");
        }
    }

    // The fleet snapshot folds both workers' `/v1/stats`: per-worker
    // request totals kept apart, their sum in the merged block.
    let fleet = outcome.fleet.expect("a healthy fleet polls every worker");
    assert_eq!(fleet.get("workers_dead").and_then(Value::as_i64), Some(0));
    let Some(Value::Obj(per_worker)) = fleet.get("per_worker") else {
        panic!("fleet snapshot has a per_worker object: {fleet}");
    };
    assert_eq!(per_worker.len(), 2);
    let mut summed = 0;
    for (addr, entry) in per_worker {
        assert_eq!(
            entry.get("reachable").and_then(Value::as_bool),
            Some(true),
            "worker {addr} is reachable"
        );
        let requests = entry.get("requests_total").and_then(Value::as_i64).unwrap_or(0);
        assert!(requests > 0, "worker {addr} served at least one request");
        summed += requests;
    }
    let merged = fleet.get("merged").expect("fleet snapshot has a merged block");
    assert_eq!(merged.get("requests_total").and_then(Value::as_i64), Some(summed));
    assert!(
        matches!(merged.get("counters"), Some(Value::Obj(fields)) if !fields.is_empty()),
        "merged counters fold the workers' registries: {merged}"
    );
    for server in servers {
        server.stop();
    }
}

#[test]
fn killing_a_worker_mid_sweep_still_completes_identically() {
    // Three workers; the victim is killed as the coordinator launches,
    // so its shards were planned for it but every dispatch to it fails
    // — the deterministic worst case of a mid-sweep death. The
    // coordinator must burn its retries, declare the worker dead,
    // rebalance the orphaned shards onto the survivors, and still merge
    // the complete grid.
    let survivors = [start_worker(), start_worker()];
    let victim = start_worker();
    let mut workers: Vec<String> = survivors.iter().map(|s| s.local_addr().to_string()).collect();
    workers.push(victim.local_addr().to_string());
    victim.stop();

    let cfg = cluster_config(workers);
    let outcome = coordinator::run(&cfg).expect("survivors must absorb the dead worker's shards");
    assert_identical(&outcome.records, &serial_records(&cfg));

    assert_eq!(outcome.stats.workers, 3);
    assert_eq!(outcome.stats.workers_dead, 1, "exactly the victim dies");
    assert!(outcome.stats.retries > 0, "the victim's shards retry before it is declared dead");
    assert!(outcome.stats.rebalances > 0, "the victim's shards rebalance onto survivors");
    assert!(outcome.spot_check_failures.is_empty(), "{:?}", outcome.spot_check_failures);
    for server in survivors {
        server.stop();
    }
}

#[test]
fn a_dead_fleet_fails_loudly_instead_of_merging_partial_results() {
    let victim = start_worker();
    let addr = victim.local_addr().to_string();
    victim.stop();

    let error = coordinator::run(&cluster_config(vec![addr]))
        .expect_err("a fleet with no live worker cannot complete");
    assert!(error.contains("dead"), "the error must name the dead fleet: {error}");
}

#[test]
fn tampered_worker_verdict_is_caught_by_the_certificate_spot_check() {
    let server = start_worker();
    let workers = vec![server.local_addr().to_string()];

    // A small serial sweep stands in for honestly merged records…
    let grid = Query::catalog_grid(2, &[AnalysisKind::Solvability]);
    let mut records = Session::new().check_many(&grid).store.records().to_vec();

    // …which a 100% audit against an honest worker confirms in full.
    let clean = spotcheck::spot_check(&records, &workers, 100, Duration::from_secs(10))
        .expect("audit against a live worker");
    assert!(clean.candidates > 0, "the solvability grid has auditable verdicts");
    assert_eq!(clean.checked, clean.candidates, "a 100% audit checks every candidate");
    assert!(clean.failures.is_empty(), "{:?}", clean.failures);

    // Tamper with one definitive verdict, as a lying worker would.
    let target = records
        .iter()
        .position(|r| matches!(r.outcome.verdict.as_str(), "solvable" | "unsolvable"))
        .expect("at least one definitive solvability verdict");
    let honest = records[target].outcome.verdict.clone();
    records[target].outcome.verdict = if honest == "solvable" {
        "unsolvable".into()
    } else {
        "solvable".into()
    };

    let audited = spotcheck::spot_check(&records, &workers, 100, Duration::from_secs(10))
        .expect("audit against a live worker");
    assert_eq!(audited.failures.len(), 1, "exactly the tampered verdict fails: {audited:?}");
    let failure = &audited.failures[0];
    assert!(
        failure.contains(&records[target].adversary) && failure.contains(&honest),
        "the rejection names the scenario and the certified verdict: {failure}"
    );
    server.stop();
}
