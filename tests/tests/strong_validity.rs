//! Strong validity (`y_p = x_q` for some `q`) — the variant the paper notes
//! after Definition 5.1.

use adversary::GeneralMA;
use consensus_core::solvability::{SolvabilityChecker, Verdict};
use dyngraph::generators;
use simulator::checker;

/// On binary domains weak and strong validity coincide; both checker modes
/// agree across the n = 2 atlas.
#[test]
fn binary_modes_agree() {
    for (pool, _) in integration_support::n2_pool_ground_truth() {
        let weak = SolvabilityChecker::new(GeneralMA::oblivious(pool.clone())).max_depth(3).check();
        let strong = SolvabilityChecker::new(GeneralMA::oblivious(pool))
            .max_depth(3)
            .strong_validity(true)
            .check();
        assert_eq!(weak.is_solvable(), strong.is_solvable());
        assert_eq!(weak.is_unsolvable(), strong.is_unsolvable());
    }
}

/// Ternary domain: the strong-validity checker synthesizes an algorithm
/// whose decisions are always someone's input, verified exhaustively.
#[test]
fn ternary_strong_validity_solvable() {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let verdict = SolvabilityChecker::new(ma.clone())
        .values(vec![0, 1, 2])
        .max_depth(3)
        .max_runs(4_000_000)
        .strong_validity(true)
        .check();
    let cert = match verdict {
        Verdict::Solvable(cert) => cert,
        other => panic!("expected solvable: {other:?}"),
    };
    // Re-verify with the strong flag at a deeper horizon.
    let cfg = checker::CheckConfig::at_depth(cert.depth + 1)
        .max_runs(4_000_000)
        .strong_validity(true);
    let report = checker::check(&cert.algorithm, &ma, &[0, 1, 2], &cfg).unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
}

/// The weak-mode certificate may violate strong validity on ternary inputs
/// (unlabeled components default to the domain minimum), while the
/// strong-mode certificate never does — the two modes genuinely differ.
#[test]
fn ternary_weak_certificate_can_violate_strong() {
    // At depth 1 every unlabeled component happens to inherit the sender's
    // input, so weak and strong coincide; at depth 2 the refinement creates
    // unlabeled components whose weak default (0) is nobody's input.
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let space = consensus_core::PrefixSpace::expand(
        &ma,
        &[0, 1, 2],
        2,
        &consensus_core::ExpandConfig::with_budget(4_000_000),
    )
    .unwrap();
    let weak = consensus_core::UniversalAlgorithm::synthesize(&space).unwrap();
    let report = checker::check(
        &weak,
        &ma,
        &[0, 1, 2],
        &checker::CheckConfig::at_depth(2).max_runs(4_000_000).strong_validity(true),
    )
    .unwrap();
    assert!(
        report
            .violations
            .iter()
            .all(|v| matches!(v, checker::Violation::StrongValidity { .. })),
        "only strong-validity violations expected: {:?}",
        report.violations
    );
    assert!(
        !report.passed(),
        "the weak default must violate strong validity at depth 2 on a ternary domain"
    );

    // The strong synthesis on the same space is clean.
    let strong = consensus_core::UniversalAlgorithm::synthesize_strong(&space).unwrap();
    let report = checker::check(
        &strong,
        &ma,
        &[0, 1, 2],
        &checker::CheckConfig::at_depth(2).max_runs(4_000_000).strong_validity(true),
    )
    .unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
}
