//! End-to-end validation of the synthesized universal algorithm (Theorem
//! 5.5) across adversary families.

use adversary::{GeneralMA, MessageAdversary};
use consensus_core::{
    config::ExpandConfig,
    solvability::{SolvabilityChecker, Verdict},
    space::PrefixSpace,
    universal::UniversalAlgorithm,
};
use dyngraph::{generators, Digraph, GraphSeq};
use simulator::{checker, engine};

fn solvable_cert(ma: GeneralMA, depth: usize) -> consensus_core::solvability::SolvableCert {
    match SolvabilityChecker::new(ma).max_depth(depth).max_runs(4_000_000).check() {
        Verdict::Solvable(cert) => cert,
        other => panic!("expected solvable: {other:?}"),
    }
}

/// The checker's own verification already runs exhaustively; this test
/// re-verifies at a *deeper* horizon than synthesis: decisions must persist
/// and stay consistent on longer runs.
#[test]
fn decisions_persist_beyond_synthesis_depth() {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let cert = solvable_cert(ma.clone(), 3);
    let cfg = checker::CheckConfig::at_depth(cert.depth + 3).max_runs(4_000_000);
    let report = checker::check(&cert.algorithm, &ma, &[0, 1], &cfg).unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.undecided_runs, 0);
}

/// Ternary input domain: the universal construction is not binary-specific.
#[test]
fn ternary_universal_algorithm() {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let space =
        PrefixSpace::expand(&ma, &[0, 1, 2], 2, &ExpandConfig::with_budget(4_000_000)).unwrap();
    assert!(space.separation().is_separated());
    let alg = UniversalAlgorithm::synthesize(&space).unwrap();
    let report = checker::check(
        &alg,
        &ma,
        &[0, 1, 2],
        &checker::CheckConfig::at_depth(2).max_runs(4_000_000),
    )
    .unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
    // Validity specifically for value 2.
    let exec = engine::run(&alg, &[2, 2], &GraphSeq::parse2("-> <-").unwrap());
    assert_eq!(exec.consensus_value(), Some(2));
}

/// The universal algorithm works on runs the synthesis never saw, as long
/// as their prefixes are admissible: random deep sequences.
#[test]
fn random_deep_runs_agree() {
    use rand::SeedableRng;
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let cert = solvable_cert(ma.clone(), 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for _ in 0..50 {
        let seq = adversary::sample::random_prefix(&ma, &mut rng, 10).unwrap();
        let inputs = adversary::sample::random_inputs(&mut rng, 2, &[0, 1]);
        let exec = engine::run(&cert.algorithm, &inputs, &seq);
        assert!(exec.all_decided());
        assert!(exec.agreement_holds());
        assert!(!exec.any_revoked());
        if inputs[0] == inputs[1] {
            assert_eq!(exec.consensus_value(), Some(inputs[0]));
        }
    }
}

/// Universal algorithm for the n = 3 star adversary handles all 3-process
/// sequences, and its decisions match the "round-1 center" rule.
#[test]
fn star_universal_matches_center_rule() {
    let ma = GeneralMA::oblivious(generators::all_out_stars(3));
    let cert = solvable_cert(ma.clone(), 3);
    let stars = generators::all_out_stars(3);
    for (center, g1) in stars.iter().enumerate() {
        for g2 in &stars {
            let seq = GraphSeq::from_graphs(vec![g1.clone(), g2.clone()]);
            let inputs = vec![4, 5, 6];
            let exec = engine::run(&cert.algorithm, &inputs, &seq);
            // Values 4–6 are outside the synthesis domain {0,1}; use binary
            // inputs for the actual check below instead.
            let _ = exec;
            for x in [[0u32, 1, 0], [1, 0, 1], [0, 0, 1]] {
                let exec = engine::run(&cert.algorithm, &x, &seq);
                assert_eq!(exec.consensus_value(), Some(x[center]), "center {center}, x {x:?}");
            }
        }
    }
}

/// Compact eventually-swap adversary: universal algorithm decides once the
/// forced exchange has happened.
#[test]
fn eventually_swap_decisions_after_exchange() {
    let ma = GeneralMA::eventually_graph(
        generators::lossy_link_full(),
        Digraph::parse2("<->").unwrap(),
        Some(2),
    );
    let cert = solvable_cert(ma.clone(), 4);
    // Sequence with the swap in round 2.
    let seq = GraphSeq::parse2("-> <-> <- ->").unwrap();
    assert!(ma.admits_prefix(&seq));
    let exec = engine::run(&cert.algorithm, &[0, 1], &seq);
    assert!(exec.all_decided());
    assert!(exec.agreement_holds());
}

/// Synthesis is deterministic: two syntheses from equal spaces produce
/// algorithms with identical decision behavior.
#[test]
fn synthesis_deterministic() {
    let ma = GeneralMA::oblivious(generators::lossy_link_reduced());
    let s1 = PrefixSpace::expand(&ma, &[0, 1], 2, &ExpandConfig::default()).unwrap();
    let s2 = PrefixSpace::expand(&ma, &[0, 1], 2, &ExpandConfig::default()).unwrap();
    let a1 = UniversalAlgorithm::synthesize(&s1).unwrap();
    let a2 = UniversalAlgorithm::synthesize(&s2).unwrap();
    assert_eq!(a1.table_size(), a2.table_size());
    for word in ["-> <-", "<- ->", "-> ->", "<- <-"] {
        let seq = GraphSeq::parse2(word).unwrap();
        for x in [[0u32, 0], [0, 1], [1, 0], [1, 1]] {
            let e1 = engine::run(&a1, &x, &seq);
            let e2 = engine::run(&a2, &x, &seq);
            for p in 0..2 {
                assert_eq!(e1.decision_of(p), e2.decision_of(p));
            }
        }
    }
}
