//! Certificate acceptance properties: every definitive catalog verdict at
//! depths 1..=3 yields a certificate that re-verifies offline without any
//! prefix-space expansion; the four tampering classes are rejected with
//! their typed [`CertError`]s; journaled certificates survive a
//! disk-backed restart with zero re-expansions; and the documented schema
//! (`docs/certificates.md`) stays in sync with the emitted encoding.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use consensus_core::certificate::CERT_VERSION;
use consensus_core::{CertError, Certificate};
use consensus_lab::json::Value;
use consensus_lab::scenario::AnalysisKind;
use consensus_lab::session::{certificate_adversary, verify_certificate, Query, Session};
use consensus_lab::store::TIMING_FIELDS;
use consensus_lab::{AnalysisConfig, CacheConfig, ExpandConfig};

fn session(cache: CacheConfig) -> Session {
    Session::with_configs(ExpandConfig::with_budget(2_000_000), AnalysisConfig::default(), cache)
        .expect("cache dir must open")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("consensus-cert-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The certificate-enabled solvability grid: whole catalog × depths 1..=3.
fn certified_grid() -> Vec<Query> {
    Query::catalog_grid(3, &[AnalysisKind::Solvability])
        .into_iter()
        .map(Query::with_certificate)
        .collect()
}

fn decode(cert: &Value) -> Certificate {
    Certificate::from_json(cert).expect("served certificate must decode")
}

/// A definitive verdict (solvable/unsolvable) carries a certificate; an
/// undecided one does not; and every carried certificate re-verifies
/// against its adversary without expanding any prefix space.
#[test]
fn every_definitive_catalog_verdict_certifies_at_depths_1_to_3() {
    let session = session(CacheConfig::default());
    let report = session.check_many(&certified_grid());
    let (mut solvable, mut unsolvable) = (0usize, 0usize);
    let builds_before_verify = session.space_cache().stats().builds;
    for record in report.store.records() {
        match record.outcome.verdict.as_str() {
            "solvable" | "unsolvable" => {
                let cert_json = record.certificate.as_ref().unwrap_or_else(|| {
                    panic!(
                        "{} depth {} is {} but carries no certificate",
                        record.adversary, record.depth, record.outcome.verdict
                    )
                });
                let cert = decode(cert_json);
                assert_eq!(cert.verdict(), record.outcome.verdict);
                assert_eq!(cert.adversary(), record.adversary);
                // The offline path: rebuild the adversary from the label
                // the certificate itself names, then re-check.
                let ma = certificate_adversary(cert.adversary()).expect("label resolves");
                consensus_core::certificate::verify(&cert, ma.as_ref()).unwrap_or_else(|e| {
                    panic!("{} depth {}: rejected: {e}", record.adversary, record.depth)
                });
                match &cert {
                    Certificate::Solvable(_) => solvable += 1,
                    Certificate::Unsolvable(_) => unsolvable += 1,
                }
            }
            _ => assert!(
                record.certificate.is_none(),
                "{} depth {} is {} yet carries a certificate",
                record.adversary,
                record.depth,
                record.outcome.verdict
            ),
        }
    }
    assert!(solvable > 0, "the catalog certifies at least one solvable entry");
    assert!(unsolvable > 0, "the catalog certifies at least one unsolvable entry");
    assert_eq!(
        session.space_cache().stats().builds,
        builds_before_verify,
        "offline verification must not expand any prefix space"
    );
}

fn solvable_cert_json() -> (Value, Query) {
    let query =
        Query::catalog("cgp-reduced-lossy-link", 1, AnalysisKind::Solvability).with_certificate();
    let record = session(CacheConfig::default()).check(&query).expect("catalog entry builds");
    assert_eq!(record.outcome.verdict, "solvable");
    (record.certificate.expect("definitive verdict carries a certificate"), query)
}

fn field_mut<'a>(value: &'a mut Value, key: &str) -> &'a mut Value {
    let Value::Obj(fields) = value else {
        panic!("not an object")
    };
    &mut fields.iter_mut().find(|(k, _)| k == key).expect("field present").1
}

fn reject(cert_json: &Value, query: &Query) -> CertError {
    let cert = decode(cert_json);
    verify_certificate(&cert, query).expect_err("tampered certificate must be rejected")
}

/// Mutation class 1: flipping the decision table's values makes the
/// witness replay disagree with its valence — `wrong-decision`.
#[test]
fn flipped_decision_table_is_rejected() {
    let (mut json, query) = solvable_cert_json();
    let Value::Arr(entries) = field_mut(&mut json, "decisions") else {
        panic!("array")
    };
    for entry in entries {
        let value = field_mut(entry, "value");
        let flipped = 1 - value.as_i64().expect("int decision value");
        *value = Value::Int(flipped);
    }
    let err = reject(&json, &query);
    assert_eq!(err.kind(), "wrong-decision", "{err}");
}

/// Mutation class 2: a truncated witness word no longer spans the stated
/// depth — `depth-mismatch`.
#[test]
fn truncated_witness_is_rejected() {
    let (mut json, query) = solvable_cert_json();
    let Value::Arr(witnesses) = field_mut(&mut json, "witnesses") else {
        panic!("array")
    };
    let Value::Arr(word) = field_mut(&mut witnesses[0], "word") else {
        panic!("array")
    };
    word.pop().expect("nonempty word");
    let err = reject(&json, &query);
    assert_eq!(err.kind(), "depth-mismatch", "{err}");
}

/// Mutation class 3: a tampered depth field disagrees with every witness
/// word — `depth-mismatch`.
#[test]
fn wrong_depth_is_rejected() {
    let (mut json, query) = solvable_cert_json();
    let depth = field_mut(&mut json, "depth");
    let deeper = depth.as_i64().expect("int depth") + 1;
    *depth = Value::Int(deeper);
    let err = reject(&json, &query);
    assert_eq!(err.kind(), "depth-mismatch", "{err}");
}

/// Mutation class 4: a certificate whose fingerprint does not match the
/// adversary it claims is stale — `fingerprint-mismatch`.
#[test]
fn stale_fingerprint_is_rejected() {
    let (mut json, query) = solvable_cert_json();
    let fp = field_mut(&mut json, "fingerprint");
    let Value::Str(hex) = fp else {
        panic!("hex string")
    };
    let flipped = if hex.starts_with('0') { "1" } else { "0" };
    *fp = Value::Str(format!("{flipped}{}", &hex[1..]));
    let err = reject(&json, &query);
    assert_eq!(err.kind(), "fingerprint-mismatch", "{err}");
}

/// The journal persists certificates: a fresh `Session` over the same
/// cache directory (a "restarted process") hands back the identical
/// record — certificate included — with **zero** prefix-space expansions.
#[test]
fn journaled_certificate_survives_restart_with_zero_expansions() {
    let dir = tmp_dir("restart");
    let queries: Vec<Query> = vec![
        Query::catalog("cgp-reduced-lossy-link", 2, AnalysisKind::Solvability).with_certificate(),
        Query::catalog("message-loss-2-2", 2, AnalysisKind::Solvability).with_certificate(),
    ];

    let cold_session = session(CacheConfig::new().disk_dir(&dir));
    let cold = cold_session.check_many(&queries);
    assert!(cold.cache.builds > 0, "cold pass must expand something");
    for record in cold.store.records() {
        assert!(record.certificate.is_some(), "{}: no certificate journaled", record.adversary);
    }
    drop(cold_session);

    let warm_session = session(CacheConfig::new().disk_dir(&dir));
    let warm = warm_session.check_many(&queries);
    assert_eq!(warm.cache.builds, 0, "restarted session must re-expand nothing");
    assert_eq!(warm.cache.disk_hits, queries.len(), "every scenario answered from disk");
    for (a, b) in cold.store.records().iter().zip(warm.store.records()) {
        assert_eq!(
            a.to_json().without_keys(TIMING_FIELDS).to_string(),
            b.to_json().without_keys(TIMING_FIELDS).to_string(),
            "journaled certificate must round-trip byte-identically"
        );
        let cert = decode(b.certificate.as_ref().expect("restart keeps the certificate"));
        verify_certificate(&cert, &queries[0])
            .or_else(|_| verify_certificate(&cert, &queries[1]))
            .expect("journaled certificate re-verifies");
    }
    assert_eq!(
        warm_session.space_cache().stats().builds,
        0,
        "verification after restart must not expand either"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn collect_keys(value: &Value, keys: &mut BTreeSet<String>) {
    match value {
        Value::Obj(fields) => {
            for (key, val) in fields {
                keys.insert(key.clone());
                collect_keys(val, keys);
            }
        }
        Value::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

/// Doc-sync: every field the encoder emits — for both variants — is
/// documented (backticked) in `docs/certificates.md`, the documented
/// version string is the compiled one, and every typed rejection kind
/// appears in the docs' error table.
#[test]
fn docs_certificates_md_matches_the_emitted_encoding() {
    let doc_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../docs/certificates.md");
    let doc = fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));

    let session = session(CacheConfig::default());
    let mut keys = BTreeSet::new();
    for (name, depth) in [("cgp-reduced-lossy-link", 1), ("message-loss-2-2", 2)] {
        let query = Query::catalog(name, depth, AnalysisKind::Solvability).with_certificate();
        let record = session.check(&query).expect("catalog entry builds");
        let cert = record.certificate.expect("definitive verdict carries a certificate");
        collect_keys(&cert, &mut keys);
    }
    // Both variants contributed: `depth` is solvable-only, `links`
    // unsolvable-only.
    assert!(keys.contains("depth") && keys.contains("links"), "{keys:?}");
    for key in &keys {
        assert!(
            doc.contains(&format!("`{key}`")) || doc.contains(&format!(".{key}`")),
            "emitted field {key:?} is not documented in docs/certificates.md"
        );
    }

    assert!(doc.contains(CERT_VERSION), "the documented version string is stale");
    for kind in [
        "encoding",
        "version",
        "adversary",
        "fingerprint-mismatch",
        "process-count-mismatch",
        "malformed-table",
        "malformed-witness",
        "depth-mismatch",
        "inadmissible-witness",
        "wrong-decision",
        "undecided",
        "valence-mismatch",
        "chain-rejected",
    ] {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "error kind {kind:?} is not documented in docs/certificates.md"
        );
    }
}
